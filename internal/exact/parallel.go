package exact

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Wave-parallel runner for the compressed DP.
//
// The mixed-radix state space is a graded poset: every transition
// S-radix[k] lowers exactly one usage digit, so a state at usage level c
// reads only rows at level c-1. Processing the levels in order with a
// barrier between them therefore preserves the recurrence exactly, while
// the states *within* a level are independent and can be split across
// workers in contiguous strata. Each cell's value is a pure function of
// the completed previous level — computeRow enumerates its candidates in
// the same order as the serial runner — so the filled table, the merge
// scan over it, and every reconstructed mapping are bit-identical to the
// serial path no matter how the strata land on workers. The property
// tests in parallel_test.go pin that equivalence.
//
// Engagement is gated on the state-space size: below the threshold the
// barrier and goroutine overhead dwarf the DP itself, so small instances
// — portfolio races, the service miss path — keep the 2-alloc serial
// path untouched.

// ParallelStateThreshold is the minimum compressed state count
// ∏_k (c_k+1) at which the DP engages the wave-parallel runner. Below
// it the serial, allocation-free path runs. The default was tuned on the
// committed bench instances: the largest serial bench row
// (ExactLargeFewClass, 729 states) must stay serial, while genuinely
// large few-class platforms (tens of thousands of states) gain from
// splitting each usage level across cores. Raise it if your platforms
// are small or your cores few; lower it toward ~1k on wide machines
// where even mid-size tables win. Mutate only from a single goroutine
// (e.g. process start); solvers read it per run.
var ParallelStateThreshold = 4096

// maxDPWorkers caps the worker strata per run: levels narrower than the
// worker count leave strata idle at the barrier, so more workers than
// this buys nothing on realistic class structures.
const maxDPWorkers = 8

// dpStats counts scheduling decisions; read through ReadStats.
var dpStats struct {
	serialRuns   atomic.Uint64
	parallelRuns atomic.Uint64
	strata       atomic.Uint64
	memoHits     atomic.Uint64
}

// Stats is a snapshot of the DP scheduling counters since process start.
type Stats struct {
	// SerialRuns counts DP executions on the serial allocation-free path.
	SerialRuns uint64 `json:"serial_runs"`
	// ParallelRuns counts DP executions that engaged the wave runner.
	ParallelRuns uint64 `json:"parallel_runs"`
	// Strata is the cumulative worker-stratum count across all parallel
	// runs; Strata/ParallelRuns is the mean fan-out per engagement.
	Strata uint64 `json:"strata"`
	// MemoHits counts runs answered from the saturated-bound memo
	// without touching the table.
	MemoHits uint64 `json:"memo_hits"`
}

// ReadStats returns the current scheduling counters. The counters are
// monotone and lock-free; the service /metrics solver section scrapes
// them to show how often the parallel DP engages in production.
func ReadStats() Stats {
	return Stats{
		SerialRuns:   dpStats.serialRuns.Load(),
		ParallelRuns: dpStats.parallelRuns.Load(),
		Strata:       dpStats.strata.Load(),
		MemoHits:     dpStats.memoHits.Load(),
	}
}

// parallelWorkers decides the stratum count for one run: 1 keeps the
// serial path.
func (a *arena) parallelWorkers() int {
	if a.states < ParallelStateThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxDPWorkers {
		w = maxDPWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// spinBarrier is a reusable generation barrier: the last arriver flips
// the generation, everyone else spins (yielding) until it does. Levels
// are microseconds apart, so parking workers on a channel or condvar per
// level would cost more than the level itself; atomics make each crossing
// a handful of nanoseconds and establish the happens-before edge that
// publishes one level's rows to the next.
type spinBarrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
	total   int32
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.total {
		b.arrived.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// buildLevels buckets the states by usage count (counting sort, ascending
// state id within a level) and caches the result for the current binding,
// so repeated runs — Pareto probing, bisection — pay for it once.
func (a *arena) buildLevels() {
	if a.levelsFor == a.boundTo && a.levelsFor != nil {
		return
	}
	maxU := 0
	for k := 0; k < a.classes; k++ {
		maxU += a.csize[k]
	}
	a.levelOff = resize(a.levelOff, maxU+2)
	for i := range a.levelOff {
		a.levelOff[i] = 0
	}
	for S := 0; S < a.states; S++ {
		a.levelOff[int(a.usage[S])+1]++
	}
	for u := 1; u <= maxU+1; u++ {
		a.levelOff[u] += a.levelOff[u-1]
	}
	a.levelCur = resize(a.levelCur, maxU+1)
	copy(a.levelCur, a.levelOff[:maxU+1])
	a.levelStates = resize(a.levelStates, a.states)
	for S := 0; S < a.states; S++ {
		u := int(a.usage[S])
		a.levelStates[a.levelCur[u]] = int32(S)
		a.levelCur[u]++
	}
	a.levelsFor = a.boundTo
}

// runParallel fills the DP table level by level, splitting each usage
// level's states into contiguous strata, one per worker. The caller acts
// as worker 0; the others are spawned once per run and live across all
// levels, crossing the spin barrier between them.
func (a *arena) runParallel(obj objective, periodBound float64, workers int) (best float64, bestState int, ok bool) {
	a.freeValid = false // the fill below overwrites the table the memo indexes into
	a.prepareFeasStart(obj, periodBound)
	a.buildLevels()
	n := a.n
	f := a.f
	f[0] = 0 // level 0 is the empty state; the rest of its row is unreachable
	for i := 1; i <= n; i++ {
		f[i] = inf
	}
	levels := len(a.levelOff) - 1
	bar := &spinBarrier{total: int32(workers)}
	work := func(w int) {
		for lvl := 1; lvl < levels; lvl++ {
			lo, hi := int(a.levelOff[lvl]), int(a.levelOff[lvl+1])
			chunk := (hi - lo + workers - 1) / workers
			s := lo + w*chunk
			e := s + chunk
			if e > hi {
				e = hi
			}
			for idx := s; idx < e; idx++ {
				a.computeRow(obj, periodBound, int(a.levelStates[idx]))
			}
			bar.wait()
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
	return a.merge()
}
