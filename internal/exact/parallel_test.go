package exact

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// fewClassEvaluator builds an instance whose platform has exactly
// `classes` speed classes of roughly p/classes members each — the shape
// where the compressed state space grows large enough for the wave
// runner to engage.
func fewClassEvaluator(r *rand.Rand, n, p, classes int) *mapping.Evaluator {
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	classSpeeds := make([]float64, classes)
	for k := range classSpeeds {
		classSpeeds[k] = float64(1 + k*3 + r.Intn(3))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = classSpeeds[i%classes]
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

// TestParallelTableBitIdentity pins the wave runner at the strongest
// possible level: the entire DP table — every value cell, bit for bit,
// and every backpointer of a reachable cell — must match the serial
// runner's, for both objectives and any worker count. Mapping-level
// identity follows a fortiori.
func TestParallelTableBitIdentity(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		classes := 2 + r.Intn(2)
		p := classes * (2 + r.Intn(3))
		ev := fewClassEvaluator(r, n, p, classes)
		a := acquireArena(ev)

		bound := 0.0
		for _, c := range a.candidates() {
			if c > bound {
				bound = c
			}
		}
		cases := []struct {
			obj   objective
			bound float64
		}{
			{objMinPeriod, 0},
			{objMinLatency, bound * slack},
			{objMinLatency, a.candidates()[len(a.candidates())/2] * slack},
		}
		for ci, c := range cases {
			sv, sstate, sok := a.runSerial(c.obj, c.bound)
			sf := append([]float64(nil), a.f...)
			sback := append([]int32(nil), a.back...)
			for workers := 2; workers <= 4; workers++ {
				pv, pstate, pok := a.runParallel(c.obj, c.bound, workers)
				if sv != pv || sstate != pstate || sok != pok {
					t.Fatalf("seed %d case %d workers %d: serial (%g,%d,%v) != parallel (%g,%d,%v)",
						seed, ci, workers, sv, sstate, sok, pv, pstate, pok)
				}
				for i, v := range a.f {
					if math.Float64bits(v) != math.Float64bits(sf[i]) {
						t.Fatalf("seed %d case %d workers %d: f[%d] = %g, serial %g", seed, ci, workers, i, v, sf[i])
					}
					if v < inf && a.back[i] != sback[i] {
						t.Fatalf("seed %d case %d workers %d: back[%d] = %d, serial %d", seed, ci, workers, i, a.back[i], sback[i])
					}
				}
			}
		}
		a.release()
	}
}

// withThreshold runs fn with ParallelStateThreshold overridden. The
// package's tests run sequentially, so the global swap is safe.
func withThreshold(threshold int, fn func()) {
	old := ParallelStateThreshold
	ParallelStateThreshold = threshold
	defer func() { ParallelStateThreshold = old }()
	fn()
}

// TestParallelSolversBitIdentical forces every solver end to end through
// both schedules and requires bit-identical metrics and interval-equal
// mappings — the parallel DP must be invisible to callers.
func TestParallelSolversBitIdentical(t *testing.T) {
	type outcome struct {
		period, latency float64
		ivs             []mapping.Interval
		err             bool
	}
	capture := func(res Result, err error) outcome {
		if err != nil {
			return outcome{err: true}
		}
		return outcome{res.Metrics.Period, res.Metrics.Latency, res.Mapping.Intervals(), false}
	}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		n := 3 + r.Intn(5)
		classes := 2 + r.Intn(2)
		p := classes * (2 + r.Intn(3))
		ev := fewClassEvaluator(r, n, p, classes)

		base, err := MinPeriod(ev)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		budgetLat := base.Metrics.Latency
		budgetPer := base.Metrics.Period * 1.2

		var serial, par [4]outcome
		run := func(out *[4]outcome) {
			out[0] = capture(MinPeriod(ev))
			out[1] = capture(MinLatencyUnderPeriod(ev, budgetPer))
			out[2] = capture(MinPeriodUnderLatency(ev, budgetLat))
			front, ferr := ParetoFront(ev)
			if ferr != nil {
				out[3] = outcome{err: true}
			} else {
				var ivs []mapping.Interval
				for _, pt := range front {
					ivs = append(ivs, pt.Mapping.Intervals()...)
				}
				out[3] = outcome{float64(len(front)), 0, ivs, false}
			}
		}
		withThreshold(1<<30, func() { run(&serial) })
		withThreshold(1, func() { run(&par) })
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Errorf("seed %d solver %d: serial %+v != parallel %+v", seed, i, serial[i], par[i])
			}
		}
	}
}

// TestParallelEngagesAboveDefaultThreshold checks a genuinely large
// instance crosses the default threshold, engages the wave runner (via
// the stats counters) and still matches the forced-serial answer.
func TestParallelEngagesAboveDefaultThreshold(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc runtime never engages the wave runner")
	}
	r := rand.New(rand.NewSource(7))
	ev := fewClassEvaluator(r, 8, 32, 4) // 9^4 = 6561 states > default 4096
	if got := ev.Platform().ClassStateSpace(); got < ParallelStateThreshold {
		t.Fatalf("test instance has %d states, below threshold %d", got, ParallelStateThreshold)
	}
	var serialRes Result
	var serr error
	withThreshold(1<<30, func() { serialRes, serr = MinPeriod(ev) })
	before := ReadStats()
	pres, perr := MinPeriod(ev)
	after := ReadStats()
	if serr != nil || perr != nil {
		t.Fatalf("solve errors: %v / %v", serr, perr)
	}
	if after.ParallelRuns <= before.ParallelRuns {
		t.Fatal("default-threshold solve did not engage the parallel runner")
	}
	if after.Strata <= before.Strata {
		t.Fatal("parallel engagement recorded no strata")
	}
	if math.Float64bits(serialRes.Metrics.Period) != math.Float64bits(pres.Metrics.Period) ||
		!reflect.DeepEqual(serialRes.Mapping.Intervals(), pres.Mapping.Intervals()) {
		t.Fatalf("parallel result diverged: %+v vs %+v", pres.Metrics, serialRes.Metrics)
	}
}
