package exact

import (
	"fmt"
	"math"
	"sort"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// This file preserves the original bitmask dynamic program over
// (prefix of stages, set of used processors). It is superseded by the
// speed-class-compressed engine in compressed.go — which explores a state
// space of ∏_k (c_k+1) instead of 2^p — but is kept as an independent
// oracle: the test-suite cross-checks the compressed solvers against it
// (and both against exhaustive enumeration) on instances with duplicated
// speeds. It lives in a test file so it never ships in consumer binaries.

func legacyGuard(ev *mapping.Evaluator) error {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return fmt.Errorf("exact: legacy solver is defined on comm-homogeneous platforms")
	}
	if p := ev.Platform().Processors(); p > MaxProcs {
		return fmt.Errorf("exact: platform has %d processors, legacy limit is %d", p, MaxProcs)
	}
	return nil
}

// legacyDP runs the bitmask dynamic program. rank scores one interval
// (d..e on processor u) and combine folds interval scores along a mapping;
// minimising the fold yields min-period (max-combine of cycles) or
// min-latency (sum-combine of latency contributions). admissible rejects
// intervals violating a side constraint.
func legacyDP(ev *mapping.Evaluator,
	rank func(d, e, u int) float64,
	combine func(acc, x float64) float64,
	admissible func(d, e, u int) bool,
) (*mapping.Mapping, float64, error) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	size := 1 << p
	f := make([][]float64, n+1)
	type choice struct {
		prev int // previous stage index
		proc int // 1-based processor of the last interval
	}
	back := make([][]choice, n+1)
	for i := range f {
		f[i] = make([]float64, size)
		back[i] = make([]choice, size)
		for s := range f[i] {
			f[i][s] = inf
		}
	}
	f[0][0] = 0
	for i := 1; i <= n; i++ {
		for S := 1; S < size; S++ {
			for u := 1; u <= p; u++ {
				bit := 1 << (u - 1)
				if S&bit == 0 {
					continue
				}
				prevSet := S &^ bit
				for k := 0; k < i; k++ {
					if f[k][prevSet] == inf {
						continue
					}
					d, e := k+1, i
					if !admissible(d, e, u) {
						continue
					}
					cand := combine(f[k][prevSet], rank(d, e, u))
					if cand < f[i][S] {
						f[i][S] = cand
						back[i][S] = choice{prev: k, proc: u}
					}
				}
			}
		}
	}
	best, bestS := inf, 0
	for S := 1; S < size; S++ {
		if f[n][S] < best {
			best, bestS = f[n][S], S
		}
	}
	if best == inf {
		return nil, 0, ErrInfeasible
	}
	var ivs []mapping.Interval
	i, S := n, bestS
	for i > 0 {
		c := back[i][S]
		ivs = append(ivs, mapping.Interval{Start: c.prev + 1, End: i, Proc: c.proc})
		S &^= 1 << (c.proc - 1)
		i = c.prev
	}
	for l, r := 0, len(ivs)-1; l < r; l, r = l+1, r-1 {
		ivs[l], ivs[r] = ivs[r], ivs[l]
	}
	m, err := mapping.New(app, plat, ivs)
	if err != nil {
		return nil, 0, fmt.Errorf("exact: reconstructed invalid mapping: %w", err)
	}
	return m, best, nil
}

func always(int, int, int) bool { return true }

func maxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sumCombine(a, b float64) float64 { return a + b }

// latencyRank returns the latency contribution of one interval
// (the trailing δ_n/b term is a constant added afterwards).
func latencyRank(ev *mapping.Evaluator) func(d, e, u int) float64 {
	return func(d, e, u int) float64 {
		in, comp, _ := ev.CycleParts(d, e, u, 0, 0)
		return in + comp
	}
}

// legacyMinPeriod is MinPeriod on the bitmask DP.
func legacyMinPeriod(ev *mapping.Evaluator) (Result, error) {
	if err := legacyGuard(ev); err != nil {
		return Result{}, err
	}
	m, _, err := legacyDP(ev, ev.Cycle, maxCombine, always)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// legacyMinLatencyUnderPeriod is MinLatencyUnderPeriod on the bitmask DP.
func legacyMinLatencyUnderPeriod(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	if err := legacyGuard(ev); err != nil {
		return Result{}, err
	}
	adm := func(d, e, u int) bool { return ev.Cycle(d, e, u) <= maxPeriod*slack }
	m, _, err := legacyDP(ev, latencyRank(ev), sumCombine, adm)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// legacyMinPeriodUnderLatency is MinPeriodUnderLatency on the bitmask DP:
// it re-derives the O(n²·p) candidate bounds and re-runs the DP from
// scratch at every probe, exactly as the original solver did.
func legacyMinPeriodUnderLatency(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	if err := legacyGuard(ev); err != nil {
		return Result{}, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cands := make([]float64, 0, n*n*p/2)
	for d := 1; d <= n; d++ {
		for e := d; e <= n; e++ {
			for u := 1; u <= p; u++ {
				cands = append(cands, ev.Cycle(d, e, u))
			}
		}
	}
	sort.Float64s(cands)
	feasibleAt := func(period float64) (Result, bool) {
		res, err := legacyMinLatencyUnderPeriod(ev, period)
		if err != nil {
			return Result{}, false
		}
		return res, res.Metrics.Latency <= maxLatency*slack
	}
	lo, hi := 0, len(cands)-1
	if _, ok := feasibleAt(cands[hi]); !ok {
		return Result{}, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasibleAt(cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res, ok := feasibleAt(cands[lo])
	if !ok {
		return Result{}, fmt.Errorf("exact: bisection lost feasibility at %g", cands[lo])
	}
	return res, nil
}

// legacyParetoFront is ParetoFront on the bitmask DP, probing every
// candidate bound with a fresh solve.
func legacyParetoFront(ev *mapping.Evaluator) ([]ParetoPoint, error) {
	if err := legacyGuard(ev); err != nil {
		return nil, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cands := make([]float64, 0, n*n*p/2)
	for d := 1; d <= n; d++ {
		for e := d; e <= n; e++ {
			for u := 1; u <= p; u++ {
				cands = append(cands, ev.Cycle(d, e, u))
			}
		}
	}
	sort.Float64s(cands)
	var points []ParetoPoint
	prevLatency := math.Inf(1)
	for _, c := range cands {
		res, err := legacyMinLatencyUnderPeriod(ev, c)
		if err != nil {
			continue // period bound below every feasible mapping
		}
		if res.Metrics.Latency < prevLatency-1e-12 {
			points = append(points, ParetoPoint{Metrics: res.Metrics, Mapping: res.Mapping})
			prevLatency = res.Metrics.Latency
		}
	}
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []ParetoPoint
	bestLatency := math.Inf(1)
	for _, pt := range points {
		if pt.Metrics.Latency < bestLatency-1e-12 {
			front = append(front, pt)
			bestLatency = pt.Metrics.Latency
		}
	}
	return front, nil
}
