package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func randEvaluator(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 1 + r.Intn(maxP)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

func TestMinPeriodKnownInstance(t *testing.T) {
	// Zero communications, works {3,1,4,1,5}, speeds {2,1}: this is the
	// heterogeneous chains problem. Best: {3,1,4}/2 = 4 and {1,5}/1 = 6
	// → 6? or {3,1,4,1}/2 = 4.5, {5}/1 = 5 → 5. Optimum is 5.
	app := pipeline.MustNew([]float64{3, 1, 4, 1, 5}, make([]float64, 6))
	plat := platform.MustNew([]float64{2, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	res, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Period-5) > 1e-9 {
		t.Errorf("MinPeriod = %g, want 5 (mapping %v)", res.Metrics.Period, res.Mapping)
	}
}

func TestMinPeriodMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 6, 4)
		dp, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		brute := BruteMinPeriod(ev)
		if math.Abs(dp.Metrics.Period-brute.Metrics.Period) > 1e-9 {
			return false
		}
		// The returned mapping must actually realise the claimed period.
		return math.Abs(ev.Period(dp.Mapping)-dp.Metrics.Period) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyUnderPeriodMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 6, 4)
		// Pick a period bound between min and max interesting values.
		minRes, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		_, optLat := ev.OptimalLatency()
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		maxP := ev.Period(single)
		bound := minRes.Metrics.Period + r.Float64()*(maxP-minRes.Metrics.Period)

		res, err := MinLatencyUnderPeriod(ev, bound)
		if err != nil {
			return false // bound ≥ min period, must be feasible
		}
		if res.Metrics.Period > bound*(1+1e-9) {
			return false
		}
		if res.Metrics.Latency < optLat-1e-9 {
			return false // below the latency lower bound: impossible
		}
		// Brute-force check.
		best := math.Inf(1)
		Enumerate(ev, func(m *mapping.Mapping) {
			met := ev.Metrics(m)
			if met.Period <= bound*(1+1e-12) && met.Latency < best {
				best = met.Latency
			}
		})
		return math.Abs(best-res.Metrics.Latency) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyUnderPeriodInfeasible(t *testing.T) {
	app := pipeline.MustNew([]float64{10}, []float64{0, 0})
	plat := platform.MustNew([]float64{2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	// Min possible period is 5; bound 4 must be infeasible.
	if _, err := MinLatencyUnderPeriod(ev, 4); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinPeriodUnderLatency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 6, 4)
		_, optLat := ev.OptimalLatency()
		// A generous latency bound recovers the global min period.
		global, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		loose, err := MinPeriodUnderLatency(ev, optLat*10+100)
		if err != nil {
			return false
		}
		if loose.Metrics.Period > global.Metrics.Period*(1+1e-9) {
			return false
		}
		// The tightest bound (optimal latency) is feasible and yields
		// exactly the single-processor mapping's period or better.
		tight, err := MinPeriodUnderLatency(ev, optLat)
		if err != nil {
			return false
		}
		return tight.Metrics.Latency <= optLat*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinPeriodUnderLatencyInfeasible(t *testing.T) {
	app := pipeline.MustNew([]float64{10}, []float64{0, 0})
	plat := platform.MustNew([]float64{2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	if _, err := MinPeriodUnderLatency(ev, 4.9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinPeriodUnderLatencyBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5, 3)
		_, optLat := ev.OptimalLatency()
		bound := optLat * (1 + r.Float64())
		res, err := MinPeriodUnderLatency(ev, bound)
		if err != nil {
			return false
		}
		best := math.Inf(1)
		Enumerate(ev, func(m *mapping.Mapping) {
			met := ev.Metrics(m)
			if met.Latency <= bound*(1+1e-12) && met.Period < best {
				best = met.Period
			}
		})
		return math.Abs(best-res.Metrics.Period) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5, 3)
		front, err := ParetoFront(ev)
		if err != nil || len(front) == 0 {
			return false
		}
		// Sorted by increasing period, strictly decreasing latency,
		// mutually non-dominated.
		for i := 1; i < len(front); i++ {
			if front[i].Metrics.Period < front[i-1].Metrics.Period {
				return false
			}
			if front[i].Metrics.Latency >= front[i-1].Metrics.Latency {
				return false
			}
		}
		// Endpoints: the lowest-period point matches MinPeriod and the
		// lowest-latency point matches the optimal latency.
		mp, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		if math.Abs(front[0].Metrics.Period-mp.Metrics.Period) > 1e-9 {
			return false
		}
		_, optLat := ev.OptimalLatency()
		last := front[len(front)-1]
		if math.Abs(last.Metrics.Latency-optLat) > 1e-9 {
			return false
		}
		// No enumerated mapping dominates any front point.
		ok := true
		Enumerate(ev, func(m *mapping.Mapping) {
			met := ev.Metrics(m)
			for _, pt := range front {
				if met.Dominates(pt.Metrics) {
					// Allow float-level ties.
					if pt.Metrics.Period-met.Period > 1e-9 || pt.Metrics.Latency-met.Latency > 1e-9 {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGuardRejectsLargeStateSpaces(t *testing.T) {
	// 17 processors of pairwise-distinct speeds compress to nothing:
	// 2^17 states exceed MaxStates.
	speeds := make([]float64, 17)
	for i := range speeds {
		speeds[i] = float64(i + 1)
	}
	plat := platform.MustNew(speeds, 1)
	if Eligible(plat) {
		t.Error("Eligible accepted a 2^17-state platform")
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)
	if _, err := MinPeriod(ev); err == nil {
		t.Error("MinPeriod accepted an oversized platform")
	}
	if _, err := MinLatencyUnderPeriod(ev, 10); err == nil {
		t.Error("MinLatencyUnderPeriod accepted an oversized platform")
	}
	if _, err := MinPeriodUnderLatency(ev, 10); err == nil {
		t.Error("MinPeriodUnderLatency accepted an oversized platform")
	}
	if _, err := ParetoFront(ev); err == nil {
		t.Error("ParetoFront accepted an oversized platform")
	}
}

func TestGuardKeyedOnClassesNotProcessors(t *testing.T) {
	// The same 17 processors all at speed 1 compress to 18 states: the
	// raw processor count no longer matters, only the class structure.
	// This platform was rejected outright under the old MaxProcs gate.
	speeds := make([]float64, 17)
	for i := range speeds {
		speeds[i] = 1
	}
	plat := platform.MustNew(speeds, 1)
	if !Eligible(plat) {
		t.Fatal("Eligible rejected a homogeneous 17-processor platform")
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{2, 3}, []float64{1, 1, 1}), plat)
	if _, err := MinPeriod(ev); err != nil {
		t.Errorf("MinPeriod on a homogeneous 17-processor platform: %v", err)
	}
}

func TestGuardRejectsHeterogeneousPlatform(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)
	if _, err := MinPeriod(ev); err == nil {
		t.Error("MinPeriod accepted a fully heterogeneous platform")
	}
}

// Theorem 2 consistency: with zero communications the exact min period
// must coincide with the exact heterogeneous chains-to-chains bottleneck.
func TestMinPeriodReducesToHeteroChains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		p := 1 + r.Intn(4)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(20))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		ev := mapping.NewEvaluator(
			pipeline.MustNew(works, make([]float64, n+1)),
			platform.MustNew(speeds, 1))
		res, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		// Brute-force the chains objective directly.
		best := math.Inf(1)
		var rec func(start int, used uint32, cur float64)
		rec = func(start int, used uint32, cur float64) {
			if start == n {
				if cur < best {
					best = cur
				}
				return
			}
			sum := 0.0
			for end := start + 1; end <= n; end++ {
				sum += works[end-1]
				for u := 0; u < p; u++ {
					if used&(1<<u) != 0 {
						continue
					}
					m := cur
					if v := sum / speeds[u]; v > m {
						m = v
					}
					if m < best {
						rec(end, used|1<<u, m)
					}
				}
			}
		}
		rec(0, 0, 0)
		return math.Abs(res.Metrics.Period-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Enumerate historically tracked used processors in a uint32 bitmask,
// which silently overflowed at p ≥ 32 — platform sizes the class-keyed
// gate now admits. Lock the slice-based fix with a wide platform.
func TestEnumerateBeyond32Processors(t *testing.T) {
	speeds := make([]float64, 33)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[32] = 2 // the fastest (and last) processor must be reachable
	ev := mapping.NewEvaluator(
		pipeline.MustNew([]float64{6, 4}, []float64{0, 0, 0}),
		platform.MustNew(speeds, 1))
	count := 0
	Enumerate(ev, func(*mapping.Mapping) { count++ })
	// 33 single-interval mappings plus 33·32 two-interval splits.
	if want := 33 + 33*32; count != want {
		t.Fatalf("Enumerate produced %d mappings, want %d", count, want)
	}
	brute := BruteMinPeriod(ev)
	res, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Period != brute.Metrics.Period {
		t.Fatalf("MinPeriod %v != brute %v", res.Metrics.Period, brute.Metrics.Period)
	}
}
