package exact

import (
	"math/rand"
	"reflect"
	"testing"

	"pipesched/internal/mapping"
)

// TestSaturatedMemoBitIdentity pins the saturated-bound memo: once a
// period bound reaches the largest entry of the cycle table, the bound
// can never reject a candidate, so every such bound must return the
// exact result a fresh computation would — across repeats, across
// different saturated bounds, and after interleaved runs that overwrite
// the table and force the memo to invalidate and rebuild.
func TestSaturatedMemoBitIdentity(t *testing.T) {
	type outcome struct {
		period, latency float64
		ivs             []mapping.Interval
	}
	capture := func(res Result, err error) outcome {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return outcome{res.Metrics.Period, res.Metrics.Latency, res.Mapping.Intervals()}
	}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(900 + seed))
		n := 3 + r.Intn(5)
		classes := 2 + r.Intn(2)
		p := classes * (2 + r.Intn(3))
		ev := fewClassEvaluator(r, n, p, classes)

		// A bound at the top of the candidate ladder saturates the check;
		// so does anything above it.
		maxCand := 0.0
		a := acquireArena(ev)
		for _, c := range a.candidates() {
			if c > maxCand {
				maxCand = c
			}
		}
		a.release()

		before := ReadStats().MemoHits
		ref := capture(MinLatencyUnderPeriod(ev, maxCand))
		for i, bound := range []float64{maxCand, maxCand * 2, 1e9, maxCand} {
			got := capture(MinLatencyUnderPeriod(ev, bound))
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d bound[%d]=%g: memoized %+v != reference %+v", seed, i, bound, got, ref)
			}
		}
		if hits := ReadStats().MemoHits; hits == before {
			t.Fatalf("seed %d: saturated repeats never hit the memo", seed)
		}

		// Interleave runs that overwrite the table: the memo must drop and
		// the recomputation must land on the same answer.
		if _, err := MinPeriod(ev); err != nil {
			t.Fatalf("seed %d: MinPeriod: %v", seed, err)
		}
		if got := capture(MinLatencyUnderPeriod(ev, maxCand)); !reflect.DeepEqual(got, ref) {
			t.Fatalf("seed %d after MinPeriod: %+v != %+v", seed, got, ref)
		}
		tight := capture(MinLatencyUnderPeriod(ev, ref.period))
		_ = tight
		if got := capture(MinLatencyUnderPeriod(ev, 1e12)); !reflect.DeepEqual(got, ref) {
			t.Fatalf("seed %d after tight-bound run: %+v != %+v", seed, got, ref)
		}
	}
}
