// Package exact provides optimal reference solvers for the bi-criteria
// interval mapping problem on Communication Homogeneous platforms. The
// problem is NP-hard (Theorem 2 of the paper), so everything here is
// exponential in the platform's structure and gated to tractable
// instances; the solvers exist to validate the polynomial heuristics, to
// win portfolio races where they fit, and to compute exact Pareto fronts
// in tests, examples and ablation benchmarks.
//
// The production engine is a speed-class-compressed dynamic program
// (compressed.go): processors of equal speed are interchangeable, so the
// DP tracks per-class usage counts instead of a 2^p used-set bitmask,
// shrinking the state space to ∏_k (c_k+1) over the class sizes c_k. The
// historical bitmask DP is retained (legacy_oracle_test.go) as an
// independent oracle the test-suite cross-checks against, alongside a
// plain exhaustive enumeration.
package exact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// MaxStates caps the compressed state space ∏_k (c_k+1) accepted by the
// solvers, which allocate O(∏(c_k+1) · n) state. The cap admits every
// platform of up to 16 processors (worst case: all speeds distinct,
// 2^16 states) and arbitrarily larger platforms whose speeds repeat —
// a homogeneous 100-processor platform needs only 101 states.
const MaxStates = 1 << 16

// MaxProcs is the historical processor cap of the bitmask dynamic
// program, which allocated O(2^p · n) state regardless of speed
// structure. It still bounds the legacy oracle used in tests; production
// eligibility is decided by Eligible against MaxStates instead.
const MaxProcs = 14

// Result is an optimal mapping together with its metrics.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// ErrInfeasible is returned when no interval mapping satisfies the
// requested constraint.
var ErrInfeasible = errors.New("exact: no interval mapping satisfies the constraint")

// Eligible reports whether the exact solvers accept the platform: it must
// be Communication Homogeneous with a compressed state space within
// MaxStates. This is the gate portfolio races and batch solvers key their
// exact-DP participation on — note it depends on the speed-class
// structure, not the raw processor count.
func Eligible(plat *platform.Platform) bool {
	return plat.Kind() == platform.CommHomogeneous && plat.ClassStateSpace() <= MaxStates
}

func guard(ev *mapping.Evaluator) error {
	plat := ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		return errors.New("exact: solvers are defined on comm-homogeneous platforms")
	}
	if s := plat.ClassStateSpace(); s > MaxStates {
		return fmt.Errorf("exact: compressed state space %d (%d processors in %d speed classes) exceeds limit %d",
			s, plat.Processors(), plat.SpeedClasses(), MaxStates)
	}
	return nil
}

// MinPeriod returns an interval mapping of minimum period (the NP-hard
// objective of Theorem 2), optimal over all interval mappings.
func MinPeriod(ev *mapping.Evaluator) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	a := acquireArena(ev)
	defer a.release()
	_, state, ok := a.run(objMinPeriod, 0)
	if !ok {
		return Result{}, ErrInfeasible
	}
	return a.result(state)
}

// MinLatencyUnderPeriod returns the minimum-latency interval mapping among
// those of period ≤ maxPeriod, or ErrInfeasible when none exists. This is
// the exact counterpart of the paper's period-constrained heuristics.
func MinLatencyUnderPeriod(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	a := acquireArena(ev)
	defer a.release()
	_, state, ok := a.run(objMinLatency, maxPeriod*slack)
	if !ok {
		return Result{}, ErrInfeasible
	}
	return a.result(state)
}

// MinPeriodUnderLatency returns the minimum-period interval mapping among
// those of latency ≤ maxLatency, or ErrInfeasible when none exists. The
// period only takes values among the distinct interval cycle-times — of
// which there are at most n²·K over the K speed classes — so the solver
// precomputes that candidate set once and binary-searches it, probing each
// bound with the min-latency DP in the shared arena; probes never
// reconstruct a mapping, they compare DP values directly.
func MinPeriodUnderLatency(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	a := acquireArena(ev)
	defer a.release()
	cands := a.candidates()
	tail := a.latencyTail()
	latBound := maxLatency * slack
	feasibleAt := func(period float64) (int, bool) {
		v, state, ok := a.run(objMinLatency, period*slack)
		return state, ok && v+tail <= latBound
	}
	lo, hi := 0, len(cands)-1
	if _, ok := feasibleAt(cands[hi]); !ok {
		return Result{}, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasibleAt(cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	state, ok := feasibleAt(cands[lo])
	if !ok {
		return Result{}, fmt.Errorf("exact: bisection lost feasibility at %g", cands[lo])
	}
	return a.result(state)
}

// Enumerate calls fn for every valid interval mapping (exhaustive;
// exponential — use on tiny instances only). The used set is a slice, not
// a bitmask, so platforms beyond 32 processors — which the class-keyed
// gate can admit — enumerate correctly.
func Enumerate(ev *mapping.Evaluator, fn func(*mapping.Mapping)) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	used := make([]bool, p+1)
	var rec func(start int, acc []mapping.Interval)
	rec = func(start int, acc []mapping.Interval) {
		if start > n {
			m, err := mapping.New(app, plat, acc)
			if err != nil {
				panic(err)
			}
			fn(m)
			return
		}
		if len(acc) == p {
			return
		}
		for end := start; end <= n; end++ {
			for u := 1; u <= p; u++ {
				if used[u] {
					continue
				}
				used[u] = true
				rec(end+1, append(acc, mapping.Interval{Start: start, End: end, Proc: u}))
				used[u] = false
			}
		}
	}
	rec(1, nil)
}

// BruteMinPeriod computes the minimum period by exhaustive enumeration —
// an independent oracle for MinPeriod in tests.
func BruteMinPeriod(ev *mapping.Evaluator) Result {
	var best Result
	found := false
	Enumerate(ev, func(m *mapping.Mapping) {
		met := ev.Metrics(m)
		if !found || met.Period < best.Metrics.Period {
			best = Result{Mapping: m, Metrics: met}
			found = true
		}
	})
	if !found {
		panic("exact: enumeration produced no mapping")
	}
	return best
}

// ParetoPoint is one non-dominated (period, latency) trade-off with a
// witness mapping.
type ParetoPoint struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// ParetoFront returns the exact Pareto front of (period, latency) over all
// interval mappings, sorted by increasing period (hence decreasing
// latency).
//
// The sweep is incremental: the sorted candidate cycle-time set and the
// solver arena are built once and shared by every probe. Candidates below
// the exact minimum period (one min-period DP) are skipped outright, each
// surviving candidate costs one min-latency DP whose value is compared
// before any mapping is reconstructed, and the sweep stops as soon as the
// latency reaches the Lemma-1 optimum — no later bound can improve it.
func ParetoFront(ev *mapping.Evaluator) ([]ParetoPoint, error) {
	if err := guard(ev); err != nil {
		return nil, err
	}
	a := acquireArena(ev)
	defer a.release()
	cands := a.candidates()
	tail := a.latencyTail()
	_, optLat := ev.OptimalLatency()

	// The minimum period is itself a candidate cycle-time (a period is the
	// max cycle of some mapping); everything below it is infeasible.
	minP, _, ok := a.run(objMinPeriod, 0)
	if !ok {
		return nil, ErrInfeasible
	}
	first := sort.SearchFloat64s(cands, minP)

	var points []ParetoPoint
	prevLatency := math.Inf(1)
	for _, c := range cands[first:] {
		v, state, ok := a.run(objMinLatency, c*slack)
		if !ok {
			continue // numeric edge: bound still below every mapping
		}
		if lat := v + tail; lat < prevLatency-1e-12 {
			res, err := a.result(state)
			if err != nil {
				return nil, err
			}
			points = append(points, ParetoPoint{Metrics: res.Metrics, Mapping: res.Mapping})
			prevLatency = lat
			if lat <= optLat {
				break // Lemma 1: latency cannot drop further
			}
		}
	}
	// The achieved period of a solution can be smaller than the candidate
	// bound that produced it, so earlier points may be dominated: run a
	// standard dominance sweep on (period asc, latency asc).
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []ParetoPoint
	bestLatency := math.Inf(1)
	for _, pt := range points {
		if pt.Metrics.Latency < bestLatency-1e-12 {
			front = append(front, pt)
			bestLatency = pt.Metrics.Latency
		}
	}
	return front, nil
}
