// Package exact provides optimal reference solvers for the bi-criteria
// interval mapping problem on Communication Homogeneous platforms. The
// problem is NP-hard (Theorem 2 of the paper), so everything here is
// exponential in the number of processors and gated to small instances;
// the solvers exist to validate the polynomial heuristics and to compute
// exact Pareto fronts in tests, examples and ablation benchmarks.
//
// Two independent algorithms are provided: a bitmask dynamic program over
// (prefix of stages, set of used processors) and a plain exhaustive
// enumeration; the test-suite cross-checks them against each other.
package exact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// MaxProcs caps the platform size accepted by the dynamic programs, which
// allocate O(2^p · n) state.
const MaxProcs = 14

// Result is an optimal mapping together with its metrics.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// ErrInfeasible is returned when no interval mapping satisfies the
// requested constraint.
var ErrInfeasible = errors.New("exact: no interval mapping satisfies the constraint")

func guard(ev *mapping.Evaluator) error {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return errors.New("exact: solvers are defined on comm-homogeneous platforms")
	}
	if p := ev.Platform().Processors(); p > MaxProcs {
		return fmt.Errorf("exact: platform has %d processors, limit is %d", p, MaxProcs)
	}
	return nil
}

// dp runs the shared bitmask dynamic program. rank scores one interval
// (d..e on processor u) and combine folds interval scores along a mapping;
// minimising the fold yields min-period (max-combine of cycles) or
// min-latency (sum-combine of latency contributions). admissible rejects
// intervals violating a side constraint.
func dp(ev *mapping.Evaluator,
	rank func(d, e, u int) float64,
	combine func(acc, x float64) float64,
	admissible func(d, e, u int) bool,
) (*mapping.Mapping, float64, error) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	size := 1 << p
	const inf = math.MaxFloat64
	f := make([][]float64, n+1)
	type choice struct {
		prev int // previous stage index
		proc int // 1-based processor of the last interval
	}
	back := make([][]choice, n+1)
	for i := range f {
		f[i] = make([]float64, size)
		back[i] = make([]choice, size)
		for s := range f[i] {
			f[i][s] = inf
		}
	}
	f[0][0] = 0
	for i := 1; i <= n; i++ {
		for S := 1; S < size; S++ {
			for u := 1; u <= p; u++ {
				bit := 1 << (u - 1)
				if S&bit == 0 {
					continue
				}
				prevSet := S &^ bit
				for k := 0; k < i; k++ {
					if f[k][prevSet] == inf {
						continue
					}
					d, e := k+1, i
					if !admissible(d, e, u) {
						continue
					}
					cand := combine(f[k][prevSet], rank(d, e, u))
					if cand < f[i][S] {
						f[i][S] = cand
						back[i][S] = choice{prev: k, proc: u}
					}
				}
			}
		}
	}
	best, bestS := inf, 0
	for S := 1; S < size; S++ {
		if f[n][S] < best {
			best, bestS = f[n][S], S
		}
	}
	if best == inf {
		return nil, 0, ErrInfeasible
	}
	var ivs []mapping.Interval
	i, S := n, bestS
	for i > 0 {
		c := back[i][S]
		ivs = append(ivs, mapping.Interval{Start: c.prev + 1, End: i, Proc: c.proc})
		S &^= 1 << (c.proc - 1)
		i = c.prev
	}
	for l, r := 0, len(ivs)-1; l < r; l, r = l+1, r-1 {
		ivs[l], ivs[r] = ivs[r], ivs[l]
	}
	m, err := mapping.New(app, plat, ivs)
	if err != nil {
		return nil, 0, fmt.Errorf("exact: reconstructed invalid mapping: %w", err)
	}
	return m, best, nil
}

func always(int, int, int) bool { return true }

func maxCombine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sumCombine(a, b float64) float64 { return a + b }

// MinPeriod returns an interval mapping of minimum period (the NP-hard
// objective of Theorem 2), optimal over all interval mappings.
func MinPeriod(ev *mapping.Evaluator) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	m, _, err := dp(ev, ev.Cycle, maxCombine, always)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// latencyRank returns the latency contribution of one interval
// (the trailing δ_n/b term is a constant added afterwards).
func latencyRank(ev *mapping.Evaluator) func(d, e, u int) float64 {
	app, plat := ev.Pipeline(), ev.Platform()
	return func(d, e, u int) float64 {
		return app.Delta(d-1)/plat.Bandwidth() + app.IntervalWork(d, e)/plat.Speed(u)
	}
}

// MinLatencyUnderPeriod returns the minimum-latency interval mapping among
// those of period ≤ maxPeriod, or ErrInfeasible when none exists. This is
// the exact counterpart of the paper's period-constrained heuristics.
func MinLatencyUnderPeriod(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	const slack = 1 + 1e-12 // absorb float noise on the boundary
	adm := func(d, e, u int) bool { return ev.Cycle(d, e, u) <= maxPeriod*slack }
	m, _, err := dp(ev, latencyRank(ev), sumCombine, adm)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// MinPeriodUnderLatency returns the minimum-period interval mapping among
// those of latency ≤ maxLatency, or ErrInfeasible when none exists. The
// period only takes values among the O(n²·p) interval cycle-times, so the
// solver binary-searches that candidate set, checking each bound with
// MinLatencyUnderPeriod.
func MinPeriodUnderLatency(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	if err := guard(ev); err != nil {
		return Result{}, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cands := make([]float64, 0, n*n*p/2)
	for d := 1; d <= n; d++ {
		for e := d; e <= n; e++ {
			for u := 1; u <= p; u++ {
				cands = append(cands, ev.Cycle(d, e, u))
			}
		}
	}
	sort.Float64s(cands)
	feasibleAt := func(period float64) (Result, bool) {
		res, err := MinLatencyUnderPeriod(ev, period)
		if err != nil {
			return Result{}, false
		}
		return res, res.Metrics.Latency <= maxLatency*(1+1e-12)
	}
	lo, hi := 0, len(cands)-1
	if _, ok := feasibleAt(cands[hi]); !ok {
		return Result{}, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasibleAt(cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res, ok := feasibleAt(cands[lo])
	if !ok {
		return Result{}, fmt.Errorf("exact: bisection lost feasibility at %g", cands[lo])
	}
	return res, nil
}

// Enumerate calls fn for every valid interval mapping (exhaustive;
// exponential — use on tiny instances only).
func Enumerate(ev *mapping.Evaluator, fn func(*mapping.Mapping)) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	var rec func(start int, used uint32, acc []mapping.Interval)
	rec = func(start int, used uint32, acc []mapping.Interval) {
		if start > n {
			m, err := mapping.New(app, plat, acc)
			if err != nil {
				panic(err)
			}
			fn(m)
			return
		}
		if len(acc) == p {
			return
		}
		for end := start; end <= n; end++ {
			for u := 1; u <= p; u++ {
				if used&(1<<u) != 0 {
					continue
				}
				rec(end+1, used|1<<u, append(acc, mapping.Interval{Start: start, End: end, Proc: u}))
			}
		}
	}
	rec(1, 0, nil)
}

// BruteMinPeriod computes the minimum period by exhaustive enumeration —
// an independent oracle for MinPeriod in tests.
func BruteMinPeriod(ev *mapping.Evaluator) Result {
	var best Result
	found := false
	Enumerate(ev, func(m *mapping.Mapping) {
		met := ev.Metrics(m)
		if !found || met.Period < best.Metrics.Period {
			best = Result{Mapping: m, Metrics: met}
			found = true
		}
	})
	if !found {
		panic("exact: enumeration produced no mapping")
	}
	return best
}

// ParetoPoint is one non-dominated (period, latency) trade-off with a
// witness mapping.
type ParetoPoint struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// ParetoFront returns the exact Pareto front of (period, latency) over all
// interval mappings, sorted by increasing period (hence decreasing
// latency). It enumerates the candidate period values and solves a
// min-latency DP at each, then prunes dominated points.
func ParetoFront(ev *mapping.Evaluator) ([]ParetoPoint, error) {
	if err := guard(ev); err != nil {
		return nil, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cands := make([]float64, 0, n*n*p/2)
	for d := 1; d <= n; d++ {
		for e := d; e <= n; e++ {
			for u := 1; u <= p; u++ {
				cands = append(cands, ev.Cycle(d, e, u))
			}
		}
	}
	sort.Float64s(cands)
	var points []ParetoPoint
	prevLatency := math.Inf(1)
	for _, c := range cands {
		res, err := MinLatencyUnderPeriod(ev, c)
		if err != nil {
			continue // period bound below every feasible mapping
		}
		if res.Metrics.Latency < prevLatency-1e-12 {
			points = append(points, ParetoPoint{Metrics: res.Metrics, Mapping: res.Mapping})
			prevLatency = res.Metrics.Latency
		}
	}
	// The achieved period of a solution can be smaller than the candidate
	// bound that produced it, so earlier points may be dominated: run a
	// standard dominance sweep on (period asc, latency asc).
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []ParetoPoint
	bestLatency := math.Inf(1)
	for _, pt := range points {
		if pt.Metrics.Latency < bestLatency-1e-12 {
			front = append(front, pt)
			bestLatency = pt.Metrics.Latency
		}
	}
	return front, nil
}
