package heuristics

import "pipesched/internal/mapping"

// The paper defines 3-Exploration only for the period-constrained
// direction (H2, H3) and plain splitting for both directions. The two
// types below complete the matrix as an ablation: 3-way exploration under
// a latency budget. They follow exactly the H5/H6 contract (start from the
// latency optimum, split while the budget holds) with the H2/H3 move set
// (3-way splits over the next two fastest unused processors, falling back
// to 2-way). EXPERIMENTS.md and BenchmarkExploLatencyAblation quantify
// what the richer move set buys once a latency budget, rather than a
// period target, limits the search.

// ThreeExploMonoL is the latency-constrained analogue of ThreeExploMono.
type ThreeExploMonoL struct{ commHomogeneousOnly }

// Name implements LatencyConstrained.
func (ThreeExploMonoL) Name() string { return "3-Explo mono, L fix" }

// ID implements LatencyConstrained. X-prefixed identifiers mark
// extensions that have no counterpart in the paper's Table 1.
func (ThreeExploMonoL) ID() string { return "X7" }

// MinimizePeriod implements LatencyConstrained.
func (h ThreeExploMonoL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return latencyConstrainedExplo(ev, maxLatency, selectMono, h.Name())
}

// ThreeExploBiL is the latency-constrained analogue of ThreeExploBi.
type ThreeExploBiL struct{ commHomogeneousOnly }

// Name implements LatencyConstrained.
func (ThreeExploBiL) Name() string { return "3-Explo bi, L fix" }

// ID implements LatencyConstrained.
func (ThreeExploBiL) ID() string { return "X8" }

// MinimizePeriod implements LatencyConstrained.
func (h ThreeExploBiL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return latencyConstrainedExplo(ev, maxLatency, selectBi, h.Name())
}

func latencyConstrainedExplo(ev *mapping.Evaluator, maxLatency float64, rule selectRule, name string) (Result, error) {
	return latencyConstrained(ev, maxLatency, splitOptions{rule: rule, threeWay: true, maxLatency: maxLatency}, name)
}

// ExtensionLatencyHeuristics returns the two latency-constrained
// 3-Exploration extensions (not part of the paper's H1–H6 set).
func ExtensionLatencyHeuristics() []LatencyConstrained {
	return []LatencyConstrained{ThreeExploMonoL{}, ThreeExploBiL{}}
}
