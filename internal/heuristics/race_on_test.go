//go:build race

package heuristics

// raceEnabled reports that this binary was built with the race detector;
// allocation-count assertions are skipped there (sync.Pool intentionally
// drops entries under -race).
const raceEnabled = true
