package heuristics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/exact"
	"pipesched/internal/mapping"
)

func TestExtensionRegistry(t *testing.T) {
	ext := ExtensionLatencyHeuristics()
	if len(ext) != 2 {
		t.Fatalf("%d extensions, want 2", len(ext))
	}
	if ext[0].ID() != "X7" || ext[1].ID() != "X8" {
		t.Errorf("IDs = %s, %s", ext[0].ID(), ext[1].ID())
	}
	// Extension IDs must not collide with the paper's H1–H6.
	seen := map[string]bool{}
	for _, h := range PeriodHeuristics() {
		seen[h.ID()] = true
	}
	for _, h := range LatencyHeuristics() {
		seen[h.ID()] = true
	}
	for _, h := range ext {
		if seen[h.ID()] {
			t.Errorf("extension ID %s collides with a paper heuristic", h.ID())
		}
	}
}

func TestExploLatencyRespectsBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		_, optLat := ev.OptimalLatency()
		bound := optLat * (0.8 + 1.7*r.Float64())
		for _, h := range ExtensionLatencyHeuristics() {
			res, err := h.MinimizePeriod(ev, bound)
			if err != nil {
				var inf *InfeasibleError
				if !errors.As(err, &inf) {
					return false
				}
				if bound >= optLat*(1+1e-9) {
					return false // must succeed at or above the optimum
				}
				continue
			}
			if res.Metrics.Latency > bound*(1+1e-6) {
				return false
			}
			if math.Abs(ev.Latency(res.Mapping)-res.Metrics.Latency) > 1e-9*(1+res.Metrics.Latency) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExploLatencyNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 7, 5)
		_, optLat := ev.OptimalLatency()
		bound := optLat * (1 + 1.5*r.Float64())
		for _, h := range ExtensionLatencyHeuristics() {
			res, err := h.MinimizePeriod(ev, bound)
			if err != nil {
				continue
			}
			opt, err := exact.MinPeriodUnderLatency(ev, bound)
			if err != nil {
				return false
			}
			if res.Metrics.Period < opt.Metrics.Period-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The extensions share the H5/H6 failure threshold (the optimal latency):
// failure depends only on the starting mapping, not the move set.
func TestExploLatencySameThresholdAsH5(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		th := LatencyFailureThreshold(ev)
		for _, h := range ExtensionLatencyHeuristics() {
			if _, err := h.MinimizePeriod(ev, th); err != nil {
				return false
			}
			if _, err := h.MinimizePeriod(ev, th*0.98-1e-6); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Ablation sanity: on aggregate, the 3-way move set must not lose to plain
// 2-way splitting under the same latency budget (it can try every 2-way
// fallback the plain splitter would).
func TestExploLatencyAggregateQuality(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var sumPlain, sumExplo float64
	count := 0
	for trial := 0; trial < 50; trial++ {
		ev := randEvaluator(r, 12, 8)
		_, optLat := ev.OptimalLatency()
		bound := optLat * 1.5
		plain, err1 := SpMonoL{}.MinimizePeriod(ev, bound)
		explo, err2 := ThreeExploMonoL{}.MinimizePeriod(ev, bound)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		sumPlain += plain.Metrics.Period
		sumExplo += explo.Metrics.Period
		count++
	}
	if sumExplo > sumPlain*1.05 {
		t.Errorf("3-way exploration lost badly to plain splitting: mean %g vs %g",
			sumExplo/float64(count), sumPlain/float64(count))
	}
}

func TestExploLatencyMappingIsValid(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ev := randEvaluator(r, 15, 10)
	_, optLat := ev.OptimalLatency()
	for _, h := range ExtensionLatencyHeuristics() {
		res, err := h.MinimizePeriod(ev, optLat*2)
		if err != nil {
			t.Fatalf("%s: %v", h.ID(), err)
		}
		// Rebuild through the validating constructor.
		if _, err := mapping.New(ev.Pipeline(), ev.Platform(), res.Mapping.Intervals()); err != nil {
			t.Errorf("%s produced an invalid mapping: %v", h.ID(), err)
		}
	}
}
