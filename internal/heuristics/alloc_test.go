package heuristics

// Allocation-regression tests: hard AllocsPerRun caps so the engine's
// zero-allocation property cannot silently rot. A steady-state solve
// touches the heap only to materialise the returned Mapping (2
// allocations in mapping.New); the caps leave a little slack for the
// occasional GC-emptied pool, nothing more. Skipped under the race
// detector, where sync.Pool intentionally drops entries and the counts
// stop being meaningful.

import (
	"testing"

	"pipesched/internal/mapping"
	"pipesched/internal/workload"
)

// allocEvaluator is the shared mid-sized instance of the caps below.
func allocEvaluator() *mapping.Evaluator {
	return workload.Generate(workload.Config{Family: workload.E2, Stages: 20, Processors: 10, Seed: 42}).Evaluator()
}

func requireAllocs(t *testing.T, label string, cap float64, f func()) {
	t.Helper()
	f() // warm the pools outside the measurement
	if got := testing.AllocsPerRun(100, f); got > cap {
		t.Errorf("%s: %.2f allocs/run, cap %g", label, got, cap)
	}
}

// TestHeuristicSolveAllocs caps one steady-state solve of every
// heuristic H1–H6 (plus the X7/X8 extensions), mirroring the 2-allocs
// guarantee the exact engine already enforces via its benchmarks.
func TestHeuristicSolveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := allocEvaluator()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	bound := ev.Period(single) * 0.4
	floor, err := MinAchievablePeriod(ev, SpMonoP{})
	if err != nil {
		t.Fatal(err)
	}
	for floor > bound {
		bound *= 1.2
	}
	for _, h := range PeriodHeuristics() {
		h := h
		requireAllocs(t, h.ID(), 6, func() {
			if _, err := h.MinimizeLatency(ev, bound); err != nil {
				t.Fatal(err)
			}
		})
	}
	budget := ev.OptimalLatencyValue() * 1.5
	for _, h := range append(LatencyHeuristics(), ExtensionLatencyHeuristics()...) {
		h := h
		requireAllocs(t, h.ID(), 6, func() {
			if _, err := h.MinimizePeriod(ev, budget); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInfeasibleSolveAllocs caps the failure path too: an infeasible
// bound still runs the full trajectory and materialises the best-effort
// payload, nothing else.
func TestInfeasibleSolveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := allocEvaluator()
	requireAllocs(t, "H1/infeasible", 12, func() {
		if _, err := (SpMonoP{}).MinimizeLatency(ev, 0); err == nil {
			t.Fatal("period 0 must be infeasible")
		}
	})
}

// TestSweepPointAllocs caps one warm grid point of each sweeper: a
// repeated result must cost nothing, and an advancing one only its
// materialisation.
func TestSweepPointAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := allocEvaluator()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	hi := ev.Period(single)
	sw := NewPeriodSweeper(ev, SpMonoP{})
	defer sw.Close()
	bound := hi
	per := testing.AllocsPerRun(40, func() {
		bound *= 0.985 // a fine descending grid: most points repeat results
		sw.Solve(bound)
	})
	if per > 8 {
		t.Errorf("PeriodSweeper: %.2f allocs per grid point, cap 8", per)
	}
	lsw := NewLatencySweeper(ev, SpMonoL{})
	defer lsw.Close()
	budget := ev.OptimalLatencyValue()
	perL := testing.AllocsPerRun(40, func() {
		budget *= 1.02
		if _, err := lsw.Solve(budget); err != nil {
			t.Fatal(err)
		}
	})
	if perL > 8 {
		t.Errorf("LatencySweeper: %.2f allocs per grid point, cap 8", perL)
	}
}

// TestRacedSolveAllocs caps the bound-polling lane: a raced solve with a
// live incumbent must allocate no more than its plain twin — every
// splitting step polls the shared incumbent, and that poll has to be a
// load-and-compare, never a heap operation.
func TestRacedSolveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := allocEvaluator()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	bound := ev.Period(single) * 0.4
	floor, err := MinAchievablePeriod(ev, SpMonoP{})
	if err != nil {
		t.Fatal(err)
	}
	for floor > bound {
		bound *= 1.2
	}
	inc := NewIncumbent()
	inc.Offer(1e308) // armed but unbeatable: every poll compares, none cancels
	for _, h := range PeriodHeuristics() {
		r, ok := h.(PeriodRacer)
		if !ok {
			continue
		}
		requireAllocs(t, h.ID()+"/raced", 6, func() {
			if _, err := r.MinimizeLatencyRaced(ev, bound, inc); err != nil {
				t.Fatal(err)
			}
		})
	}
	budget := ev.OptimalLatencyValue() * 1.5
	for _, h := range LatencyHeuristics() {
		r, ok := h.(LatencyRacer)
		if !ok {
			continue
		}
		requireAllocs(t, h.ID()+"/raced", 6, func() {
			if _, err := r.MinimizePeriodRaced(ev, budget, inc); err != nil {
				t.Fatal(err)
			}
		})
	}
}
