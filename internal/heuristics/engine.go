// Package heuristics implements the six polynomial bi-criteria mapping
// heuristics of Section 4 of the paper, built on a shared interval
// splitting engine.
//
// Every heuristic sorts processors by non-increasing speed and starts from
// the latency-optimal mapping (all stages on the fastest processor), then
// repeatedly splits the interval of the processor currently achieving the
// largest cycle-time, enrolling the next fastest unused processor(s):
//
//   - H1 "Sp mono P":   2-way splits, mono-criterion rule, period fixed.
//   - H2 "3-Explo mono": 3-way splits, mono-criterion rule, period fixed.
//   - H3 "3-Explo bi":  3-way splits, Δlatency/Δperiod rule, period fixed.
//   - H4 "Sp bi P":     binary search over an authorized latency increase
//     around ratio-guided 2-way splits, period fixed.
//   - H5 "Sp mono L":   2-way splits, mono rule, latency fixed.
//   - H6 "Sp bi L":     2-way splits, ratio rule, latency fixed.
//
// Where the paper under-specifies, DESIGN.md §4 records the choices; the
// most important are that a split is applied only when it strictly reduces
// the bottleneck cycle-time (termination) and that 3-Explo falls back to a
// 2-way split when fewer than two unused processors or fewer than three
// stages remain.
package heuristics

import (
	"fmt"
	"math"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// relEps is the relative tolerance used for feasibility comparisons; all
// quantities are sums of a few dozen well-scaled terms, so 1e-9 is far
// above accumulated rounding and far below any modelling signal.
const relEps = 1e-9

// leq reports x ≤ y up to relative tolerance.
func leq(x, y float64) bool { return x <= y+relEps*(1+math.Abs(y)) }

// lt reports x < y by a margin exceeding the tolerance (used for the
// strict-improvement acceptance rule).
func lt(x, y float64) bool { return x < y-relEps*(1+math.Abs(y)) }

// state is the mutable working set of the splitting engine: the current
// interval mapping, its per-interval cycle-times, the current latency, and
// the list of unused processors in fastest-first order.
type state struct {
	ev     *mapping.Evaluator
	ivs    []mapping.Interval
	cycles []float64 // cycles[j] = cycle-time of ivs[j]
	lat    float64   // current latency, equation (2)
	free   []int     // unused processors, fastest first
}

// newState builds the initial state: all stages on the fastest processor.
// The engine requires a Communication Homogeneous platform (the paper's
// setting); the fully heterogeneous extension lives in fullhet.go.
func newState(ev *mapping.Evaluator) *state {
	plat := ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		panic("heuristics: the paper's heuristics target comm-homogeneous platforms; see SplitFullyHet for the extension")
	}
	app := ev.Pipeline()
	order := plat.FastestFirst()
	first := order[0]
	st := &state{
		ev:   ev,
		ivs:  []mapping.Interval{{Start: 1, End: app.Stages(), Proc: first}},
		free: order[1:],
	}
	st.cycles = []float64{ev.Cycle(1, app.Stages(), first)}
	st.lat = st.latencyContribution(1, app.Stages(), first) + app.Delta(app.Stages())/plat.Bandwidth()
	return st
}

// latencyContribution returns the latency term of one interval:
// δ_{d-1}/b + W(d,e)/s_u (the trailing δ_n/b of equation (2) is tracked
// separately as a constant).
func (st *state) latencyContribution(d, e, u int) float64 {
	app, plat := st.ev.Pipeline(), st.ev.Platform()
	return app.Delta(d-1)/plat.Bandwidth() + app.IntervalWork(d, e)/plat.Speed(u)
}

// period returns the current period (max cycle-time).
func (st *state) period() float64 {
	max := st.cycles[0]
	for _, c := range st.cycles[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

// bottleneck returns the index of the interval achieving the period
// (lowest index on ties, for determinism).
func (st *state) bottleneck() int {
	best := 0
	for j, c := range st.cycles {
		if c > st.cycles[best] {
			best = j
		}
	}
	return best
}

// latency returns the current latency.
func (st *state) latency() float64 { return st.lat }

// mapping materialises the current state as a validated Mapping.
func (st *state) mapping() *mapping.Mapping {
	return mapping.MustNew(st.ev.Pipeline(), st.ev.Platform(), st.ivs)
}

// part is one piece of a candidate split.
type part struct {
	d, e, proc int
	cycle      float64
}

// candidate is a proposed replacement of the bottleneck interval by two or
// three parts.
type candidate struct {
	parts    []part
	maxCycle float64 // max cycle among the parts
	dLat     float64 // latency change of the whole mapping
	ratio    float64 // max_i Δlatency/Δperiod(i); +Inf when some Δperiod(i) ≤ 0
}

// buildCandidate assembles the candidate metrics for parts replacing
// interval idx (whose current cycle is oldCycle).
func (st *state) buildCandidate(idx int, parts []part) candidate {
	oldCycle := st.cycles[idx]
	iv := st.ivs[idx]
	oldLat := st.latencyContribution(iv.Start, iv.End, iv.Proc)
	newLat := 0.0
	maxCycle := 0.0
	ratio := math.Inf(-1)
	for i := range parts {
		p := &parts[i]
		p.cycle = st.ev.Cycle(p.d, p.e, p.proc)
		if p.cycle > maxCycle {
			maxCycle = p.cycle
		}
		newLat += st.latencyContribution(p.d, p.e, p.proc)
	}
	dLat := newLat - oldLat
	for _, p := range parts {
		dp := oldCycle - p.cycle
		if dp <= relEps*(1+oldCycle) {
			ratio = math.Inf(1)
			break
		}
		if r := dLat / dp; r > ratio {
			ratio = r
		}
	}
	return candidate{parts: parts, maxCycle: maxCycle, dLat: dLat, ratio: ratio}
}

// selection rules: the mono-criterion rule minimises the worst new
// cycle-time; the bi-criteria rule minimises the worst
// Δlatency/Δperiod(i) ratio. Ties fall back to the other criterion, then
// to generation order (deterministic).

type selectRule int

const (
	selectMono selectRule = iota
	selectBi
)

func better(rule selectRule, a, b candidate) bool {
	switch rule {
	case selectMono:
		if a.maxCycle != b.maxCycle {
			return a.maxCycle < b.maxCycle
		}
		return a.dLat < b.dLat
	default: // selectBi
		if a.ratio != b.ratio {
			return a.ratio < b.ratio
		}
		return a.maxCycle < b.maxCycle
	}
}

// splitOptions bundles the knobs the six heuristics vary.
type splitOptions struct {
	rule       selectRule
	threeWay   bool    // try 3-way splits, falling back to 2-way
	maxLatency float64 // candidates must keep latency ≤ maxLatency (+Inf to disable)
}

// bestSplit enumerates the admissible splits of interval idx and returns
// the best candidate under the options, or ok=false when no admissible
// candidate exists. Admissible means: strictly reduces the bottleneck
// cycle-time and respects the latency cap.
func (st *state) bestSplit(idx int, opt splitOptions) (candidate, bool) {
	iv := st.ivs[idx]
	oldCycle := st.cycles[idx]
	var best candidate
	found := false
	consider := func(parts []part) {
		c := st.buildCandidate(idx, parts)
		if !lt(c.maxCycle, oldCycle) {
			return // must strictly improve the bottleneck
		}
		if !leq(st.lat+c.dLat, opt.maxLatency) {
			return
		}
		if !found || better(opt.rule, c, best) {
			best, found = c, true
		}
	}

	nFree := len(st.free)
	if nFree == 0 {
		return candidate{}, false
	}
	stages := iv.End - iv.Start + 1

	if opt.threeWay && nFree >= 2 && stages >= 3 {
		j1, j2 := st.free[0], st.free[1]
		procs := [3]int{iv.Proc, j1, j2}
		// All cut pairs and all bijections of the three parts onto
		// {j, j', j''} — the paper's "testing all possible
		// permutations and all possible positions where to cut".
		perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for k1 := iv.Start; k1 < iv.End; k1++ {
			for k2 := k1 + 1; k2 < iv.End; k2++ {
				bounds := [3][2]int{{iv.Start, k1}, {k1 + 1, k2}, {k2 + 1, iv.End}}
				for _, pm := range perms {
					parts := []part{
						{d: bounds[0][0], e: bounds[0][1], proc: procs[pm[0]]},
						{d: bounds[1][0], e: bounds[1][1], proc: procs[pm[1]]},
						{d: bounds[2][0], e: bounds[2][1], proc: procs[pm[2]]},
					}
					consider(parts)
				}
			}
		}
		if found {
			return best, true
		}
		// No admissible 3-way split: fall through to 2-way below.
	}

	if stages < 2 {
		return candidate{}, false
	}
	j1 := st.free[0]
	for k := iv.Start; k < iv.End; k++ {
		consider([]part{{d: iv.Start, e: k, proc: iv.Proc}, {d: k + 1, e: iv.End, proc: j1}})
		consider([]part{{d: iv.Start, e: k, proc: j1}, {d: k + 1, e: iv.End, proc: iv.Proc}})
	}
	return best, found
}

// apply replaces interval idx by the candidate's parts and consumes the
// newly enrolled processors from the free list.
func (st *state) apply(idx int, c candidate) {
	iv := st.ivs[idx]
	newIvs := make([]mapping.Interval, 0, len(st.ivs)+len(c.parts)-1)
	newCycles := make([]float64, 0, cap(newIvs))
	newIvs = append(newIvs, st.ivs[:idx]...)
	newCycles = append(newCycles, st.cycles[:idx]...)
	usedNew := make(map[int]bool, 2)
	for _, p := range c.parts {
		newIvs = append(newIvs, mapping.Interval{Start: p.d, End: p.e, Proc: p.proc})
		newCycles = append(newCycles, p.cycle)
		if p.proc != iv.Proc {
			usedNew[p.proc] = true
		}
	}
	newIvs = append(newIvs, st.ivs[idx+1:]...)
	newCycles = append(newCycles, st.cycles[idx+1:]...)
	st.ivs, st.cycles = newIvs, newCycles
	st.lat += c.dLat
	remaining := st.free[:0]
	for _, u := range st.free {
		if !usedNew[u] {
			remaining = append(remaining, u)
		}
	}
	st.free = remaining
}

// splitUntil repeatedly splits the bottleneck interval under opt until the
// period drops to target or below, or no admissible split remains. It
// reports whether the target was reached.
func (st *state) splitUntil(target float64, opt splitOptions) bool {
	for !leq(st.period(), target) {
		idx := st.bottleneck()
		c, ok := st.bestSplit(idx, opt)
		if !ok {
			return false
		}
		st.apply(idx, c)
	}
	return true
}

// Result is the outcome of one heuristic run.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

func (st *state) result() Result {
	m := st.mapping()
	return Result{Mapping: m, Metrics: mapping.Metrics{Period: st.period(), Latency: st.latency()}}
}

// InfeasibleError reports that a heuristic could not satisfy its
// constraint. Best holds the best mapping the heuristic reached anyway
// (useful for failure-threshold studies: Best.Metrics records how close it
// got).
type InfeasibleError struct {
	Heuristic  string
	Constraint string  // "period" or "latency"
	Target     float64 // the requested bound
	Achieved   float64 // the best value reached
	Best       Result
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("heuristics: %s could not reach %s ≤ %g (best achieved %g)",
		e.Heuristic, e.Constraint, e.Target, e.Achieved)
}
