// Package heuristics implements the six polynomial bi-criteria mapping
// heuristics of Section 4 of the paper, built on a shared interval
// splitting engine.
//
// Every heuristic sorts processors by non-increasing speed and starts from
// the latency-optimal mapping (all stages on the fastest processor), then
// repeatedly splits the interval of the processor currently achieving the
// largest cycle-time, enrolling the next fastest unused processor(s):
//
//   - H1 "Sp mono P":   2-way splits, mono-criterion rule, period fixed.
//   - H2 "3-Explo mono": 3-way splits, mono-criterion rule, period fixed.
//   - H3 "3-Explo bi":  3-way splits, Δlatency/Δperiod rule, period fixed.
//   - H4 "Sp bi P":     binary search over an authorized latency increase
//     around ratio-guided 2-way splits, period fixed.
//   - H5 "Sp mono L":   2-way splits, mono rule, latency fixed.
//   - H6 "Sp bi L":     2-way splits, ratio rule, latency fixed.
//
// Where the paper under-specifies, DESIGN.md §4 records the choices; the
// most important are that a split is applied only when it strictly reduces
// the bottleneck cycle-time (termination) and that 3-Explo falls back to a
// 2-way split when fewer than two unused processors or fewer than three
// stages remain.
//
// The engine is allocation-free in steady state: its working set (the
// interval list, per-interval cycle-times and the fastest-first free
// list) lives in a mapping.Scratch leased from the evaluator, the state
// struct itself is pooled, candidates are fixed-size values, and apply
// splices parts into the interval list in place. A solve touches the
// heap only to materialise the final Mapping. The pre-pooling engine is
// retained verbatim in legacy_oracle_test.go as the oracle the rebuilt
// engine must match bit for bit.
package heuristics

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// ErrUnsupportedPlatform reports that a heuristic was asked to solve on a
// platform kind outside its capability (see the Supports methods). It is
// returned — never panicked — from every exported entry point, so a
// caller holding an arbitrary platform can always dispatch by capability
// with errors.Is(err, ErrUnsupportedPlatform) instead of recovering.
var ErrUnsupportedPlatform = errors.New("heuristics: unsupported platform kind")

// unsupportedPlatform wraps ErrUnsupportedPlatform with the offending
// kind and a pointer at the lane that does serve it.
func unsupportedPlatform(kind platform.Kind) error {
	return fmt.Errorf("%w: the paper's splitting engine targets comm-homogeneous platforms, got %q (use SplitFullyHet or the FullHet* heuristics)", ErrUnsupportedPlatform, kind)
}

// commHomogeneousOnly is embedded by the paper's H1–H6 heuristics (and
// the X7/X8 extensions): their shared splitting engine prices every link
// at one bandwidth, so they serve Communication Homogeneous platforms
// only. The fullhet lane (fullhet.go) overrides Supports to accept every
// kind.
type commHomogeneousOnly struct{}

// Supports reports whether the heuristic can solve on plat.
func (commHomogeneousOnly) Supports(plat *platform.Platform) bool {
	return plat.Kind() == platform.CommHomogeneous
}

// relEps is the relative tolerance used for feasibility comparisons; all
// quantities are sums of a few dozen well-scaled terms, so 1e-9 is far
// above accumulated rounding and far below any modelling signal.
const relEps = 1e-9

// leq reports x ≤ y up to relative tolerance.
func leq(x, y float64) bool { return x <= y+relEps*(1+math.Abs(y)) }

// lt reports x < y by a margin exceeding the tolerance (used for the
// strict-improvement acceptance rule).
func lt(x, y float64) bool { return x < y-relEps*(1+math.Abs(y)) }

// state is the mutable working set of the splitting engine: the current
// interval mapping, its per-interval cycle-times, the current latency,
// and the unused processors. Acquire with acquireState, return with
// release; between the two every slice aliases the evaluator-leased
// scratch, and reset rewinds to the initial mapping without touching the
// heap (H4's bisection trials and the sweepers rerun the engine through
// it).
type state struct {
	ev *mapping.Evaluator
	sc *mapping.Scratch

	ivs    []mapping.Interval
	cycles []float64 // cycles[j] = cycle-time of ivs[j]
	lat    float64   // current latency, equation (2)

	// deltaB[k] = δ_k/b, computed once per acquire: the communication
	// term of every latency contribution, hoisted out of the candidate
	// loops (the value is the same division the legacy engine performs
	// per candidate, so results are unchanged bit for bit).
	deltaB []float64

	// free holds every non-fastest processor in fastest-first order;
	// entries before freeOff are enrolled. Candidates only ever enroll
	// the next one or two unused processors, so consumption is a cursor
	// bump, not a filter.
	free    []int
	freeOff int

	// minRejectedLat is the smallest total latency (current + Δ) of a
	// candidate rejected only by the latency cap since the last reset.
	// A rerun under a cap below it replays every decision identically —
	// the invariant LatencySweeper's warm starts rest on.
	minRejectedLat float64

	// race holds the mid-race cancellation hooks (race.go); the zero
	// value — every solo run — disables them.
	race raceWatch
}

var statePool = sync.Pool{New: func() any { return new(state) }}

// acquireState takes an engine state from the pool, leases scratch
// buffers from ev and rewinds to the initial latency-optimal mapping.
// The caller must release the state when done. On a platform kind the
// engine cannot price it returns ErrUnsupportedPlatform instead of
// panicking — no request input may reach a panic through a heuristic.
func acquireState(ev *mapping.Evaluator) (*state, error) {
	plat := ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		return nil, unsupportedPlatform(plat.Kind())
	}
	st := statePool.Get().(*state)
	st.ev = ev
	st.race = raceWatch{}
	st.sc = ev.LeaseScratch()
	st.ivs = st.sc.Ivs[:0]
	st.cycles = st.sc.Cycles[:0]
	st.free = st.sc.Procs[:0]
	for i := 1; i < plat.Processors(); i++ {
		st.free = append(st.free, plat.OrderedProcessor(i))
	}
	app := ev.Pipeline()
	b := plat.Bandwidth()
	st.deltaB = st.sc.Comm[:0]
	for k := 0; k <= app.Stages(); k++ {
		st.deltaB = append(st.deltaB, app.Delta(k)/b)
	}
	st.reset()
	return st, nil
}

// release hands the grown buffers back to the evaluator's scratch pool
// and the state back to the engine pool.
func (st *state) release() {
	st.sc.Ivs = st.ivs[:0]
	st.sc.Cycles = st.cycles[:0]
	st.sc.Comm = st.deltaB[:0]
	st.sc.Procs = st.free[:0]
	st.sc.Release()
	st.ev, st.sc = nil, nil
	st.ivs, st.cycles, st.free, st.deltaB = nil, nil, nil, nil
	statePool.Put(st)
}

// reset rewinds the state to the initial mapping: all stages on the
// fastest processor, every other processor free.
func (st *state) reset() {
	app, plat := st.ev.Pipeline(), st.ev.Platform()
	n := app.Stages()
	first := plat.Fastest()
	st.ivs = append(st.ivs[:0], mapping.Interval{Start: 1, End: n, Proc: first})
	st.cycles = append(st.cycles[:0], st.ev.Cycle(1, n, first))
	st.freeOff = 0
	st.lat = st.latencyContribution(1, n, first) + st.deltaB[n]
	st.minRejectedLat = math.Inf(1)
}

// latencyContribution returns the latency term of one interval:
// δ_{d-1}/b + W(d,e)/s_u (the trailing δ_n/b of equation (2) is tracked
// separately as a constant).
func (st *state) latencyContribution(d, e, u int) float64 {
	return st.deltaB[d-1] + st.ev.Pipeline().IntervalWork(d, e)/st.ev.Platform().Speed(u)
}

// period returns the current period (max cycle-time).
func (st *state) period() float64 {
	max := st.cycles[0]
	for _, c := range st.cycles[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

// bottleneck returns the index of the interval achieving the period
// (lowest index on ties, for determinism).
func (st *state) bottleneck() int {
	best := 0
	for j, c := range st.cycles {
		if c > st.cycles[best] {
			best = j
		}
	}
	return best
}

// latency returns the current latency.
func (st *state) latency() float64 { return st.lat }

// part is one piece of a candidate split.
type part struct {
	d, e, proc int
	cycle      float64
}

// candidate is a proposed replacement of the bottleneck interval by two
// or three parts. It is a fixed-size value: candidates are scored,
// compared and copied without heap allocation.
type candidate struct {
	parts    [3]part
	n        int     // parts in use (2 or 3)
	maxCycle float64 // max cycle among the parts
	dLat     float64 // latency change of the whole mapping
	ratio    float64 // max_i Δlatency/Δperiod(i); +Inf when some Δperiod(i) ≤ 0
}

// score fills c's derived metrics for parts replacing an interval of
// cycle-time oldCycle and latency contribution oldLat. The caller
// supplies each part's cycle (in parts[i].cycle) and latency
// contribution (latContrib[i]); sums run in part order, matching the
// legacy engine bit for bit.
func scoreCandidate(oldCycle, oldLat float64, c *candidate, latContrib *[3]float64) {
	newLat := 0.0
	maxCycle := 0.0
	for i := 0; i < c.n; i++ {
		if c.parts[i].cycle > maxCycle {
			maxCycle = c.parts[i].cycle
		}
		newLat += latContrib[i]
	}
	c.maxCycle = maxCycle
	c.dLat = newLat - oldLat
	ratio := math.Inf(-1)
	for i := 0; i < c.n; i++ {
		dp := oldCycle - c.parts[i].cycle
		if dp <= relEps*(1+oldCycle) {
			ratio = math.Inf(1)
			break
		}
		if r := c.dLat / dp; r > ratio {
			ratio = r
		}
	}
	c.ratio = ratio
}

// selection rules: the mono-criterion rule minimises the worst new
// cycle-time; the bi-criteria rule minimises the worst
// Δlatency/Δperiod(i) ratio. Ties fall back to the other criterion, then
// to generation order (deterministic).

type selectRule int

const (
	selectMono selectRule = iota
	selectBi
)

func better(rule selectRule, a, b *candidate) bool {
	switch rule {
	case selectMono:
		if a.maxCycle != b.maxCycle {
			return a.maxCycle < b.maxCycle
		}
		return a.dLat < b.dLat
	default: // selectBi
		if a.ratio != b.ratio {
			return a.ratio < b.ratio
		}
		return a.maxCycle < b.maxCycle
	}
}

// splitOptions bundles the knobs the six heuristics vary.
type splitOptions struct {
	rule       selectRule
	threeWay   bool    // try 3-way splits, falling back to 2-way
	maxLatency float64 // candidates must keep latency ≤ maxLatency (+Inf to disable)
}

// consider scores cur and keeps it in best when admissible and better
// under the options. Admissible means: strictly reduces the bottleneck
// cycle-time and respects the latency cap. Candidates failing only the
// cap feed minRejectedLat (the sweep warm-start invariant).
func (st *state) consider(opt splitOptions, oldCycle, oldLat float64, cur *candidate, latContrib *[3]float64, best *candidate, found *bool) {
	scoreCandidate(oldCycle, oldLat, cur, latContrib)
	if !lt(cur.maxCycle, oldCycle) {
		return // must strictly improve the bottleneck
	}
	if total := st.lat + cur.dLat; !leq(total, opt.maxLatency) {
		if total < st.minRejectedLat {
			st.minRejectedLat = total
		}
		return
	}
	if !*found || better(opt.rule, cur, best) {
		*best, *found = *cur, true
	}
}

// bestSplit enumerates the admissible splits of interval idx and returns
// the best candidate under the options, or ok=false when no admissible
// candidate exists.
func (st *state) bestSplit(idx int, opt splitOptions) (candidate, bool) {
	iv := st.ivs[idx]
	oldCycle := st.cycles[idx]
	oldLat := st.latencyContribution(iv.Start, iv.End, iv.Proc)
	var best, cur candidate
	var latContrib [3]float64
	found := false

	nFree := len(st.free) - st.freeOff
	if nFree == 0 {
		return candidate{}, false
	}
	stages := iv.End - iv.Start + 1

	if opt.threeWay && nFree >= 2 && stages >= 3 {
		j1, j2 := st.free[st.freeOff], st.free[st.freeOff+1]
		procs := [3]int{iv.Proc, j1, j2}
		// All cut pairs and all bijections of the three parts onto
		// {j, j', j''} — the paper's "testing all possible
		// permutations and all possible positions where to cut".
		perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		cur.n = 3
		// cyc[b][p] and latc[b][p] cache the cycle-time and latency
		// contribution of bounds b on procs[p], so the six permutations
		// of one cut pair share nine evaluations instead of redoing
		// eighteen. Values are identical either way — only the sharing
		// is new.
		var cyc, latc [3][3]float64
		for k1 := iv.Start; k1 < iv.End; k1++ {
			for k2 := k1 + 1; k2 < iv.End; k2++ {
				bounds := [3][2]int{{iv.Start, k1}, {k1 + 1, k2}, {k2 + 1, iv.End}}
				for b := 0; b < 3; b++ {
					for pi := 0; pi < 3; pi++ {
						cyc[b][pi] = st.ev.Cycle(bounds[b][0], bounds[b][1], procs[pi])
						latc[b][pi] = st.latencyContribution(bounds[b][0], bounds[b][1], procs[pi])
					}
				}
				for _, pm := range perms {
					for b := 0; b < 3; b++ {
						cur.parts[b] = part{d: bounds[b][0], e: bounds[b][1], proc: procs[pm[b]], cycle: cyc[b][pm[b]]}
						latContrib[b] = latc[b][pm[b]]
					}
					st.consider(opt, oldCycle, oldLat, &cur, &latContrib, &best, &found)
				}
			}
		}
		if found {
			return best, true
		}
		// No admissible 3-way split: fall through to 2-way below.
	}

	if stages < 2 {
		return candidate{}, false
	}
	j1 := st.free[st.freeOff]
	cur.n = 2
	for k := iv.Start; k < iv.End; k++ {
		cur.parts[0] = part{d: iv.Start, e: k, proc: iv.Proc, cycle: st.ev.Cycle(iv.Start, k, iv.Proc)}
		cur.parts[1] = part{d: k + 1, e: iv.End, proc: j1, cycle: st.ev.Cycle(k+1, iv.End, j1)}
		latContrib[0] = st.latencyContribution(iv.Start, k, iv.Proc)
		latContrib[1] = st.latencyContribution(k+1, iv.End, j1)
		st.consider(opt, oldCycle, oldLat, &cur, &latContrib, &best, &found)

		cur.parts[0] = part{d: iv.Start, e: k, proc: j1, cycle: st.ev.Cycle(iv.Start, k, j1)}
		cur.parts[1] = part{d: k + 1, e: iv.End, proc: iv.Proc, cycle: st.ev.Cycle(k+1, iv.End, iv.Proc)}
		latContrib[0] = st.latencyContribution(iv.Start, k, j1)
		latContrib[1] = st.latencyContribution(k+1, iv.End, iv.Proc)
		st.consider(opt, oldCycle, oldLat, &cur, &latContrib, &best, &found)
	}
	return best, found
}

// apply splices the candidate's parts over interval idx in place and
// advances the free-list cursor past the newly enrolled processors
// (candidates always enroll the next one or two unused processors).
func (st *state) apply(idx int, c *candidate) {
	np := c.n
	for i := 1; i < np; i++ {
		st.ivs = append(st.ivs, mapping.Interval{})
		st.cycles = append(st.cycles, 0)
	}
	copy(st.ivs[idx+np:], st.ivs[idx+1:])
	copy(st.cycles[idx+np:], st.cycles[idx+1:])
	for i := 0; i < np; i++ {
		p := c.parts[i]
		st.ivs[idx+i] = mapping.Interval{Start: p.d, End: p.e, Proc: p.proc}
		st.cycles[idx+i] = p.cycle
	}
	st.lat += c.dLat
	st.freeOff += np - 1
}

// splitUntil repeatedly splits the bottleneck interval under opt until the
// period drops to target or below, or no admissible split remains. It
// reports whether the target was reached. Raced runs additionally poll
// their cancellation bounds between splits (racePoll, a no-op for solo
// runs) and stop early when they prove the run cannot win.
func (st *state) splitUntil(target float64, opt splitOptions) bool {
	for !leq(st.period(), target) {
		if st.racePoll(target) {
			return false
		}
		idx := st.bottleneck()
		c, ok := st.bestSplit(idx, opt)
		if !ok {
			return false
		}
		st.apply(idx, &c)
	}
	return true
}

// Result is the outcome of one heuristic run.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

// result materialises the current state as a validated Mapping with its
// metrics — the one heap-touching step of a solve.
func (st *state) result() Result {
	m := mapping.MustNew(st.ev.Pipeline(), st.ev.Platform(), st.ivs)
	return Result{Mapping: m, Metrics: mapping.Metrics{Period: st.period(), Latency: st.latency()}}
}

// InfeasibleError reports that a heuristic could not satisfy its
// constraint. Best holds the best mapping the heuristic reached anyway
// (useful for failure-threshold studies: Best.Metrics records how close it
// got).
type InfeasibleError struct {
	Heuristic  string
	Constraint string  // "period" or "latency"
	Target     float64 // the requested bound
	Achieved   float64 // the best value reached
	Best       Result
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("heuristics: %s could not reach %s ≤ %g (best achieved %g)",
		e.Heuristic, e.Constraint, e.Target, e.Achieved)
}
