package heuristics

// This file freezes the pre-pooling splitting engine — the straight
// transcription of the paper's Section-4 heuristics that allocated fresh
// interval lists, candidate part slices and free-list maps on every
// step — as a test-only oracle, exactly as internal/exact retains its
// legacy bitmask DP in legacy_oracle_test.go. The pooled engine in
// engine.go must reproduce it bit for bit: identical intervals, metrics
// and InfeasibleError payloads for every heuristic on every instance.
// oracle_equivalence_test.go drives the comparison across the paper's
// workload families under the race detector.
//
// Nothing here is reachable from production code; it exists so the
// zero-allocation engine can never silently drift from the audited
// semantics.

import (
	"math"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// legacyState is the frozen allocating working set of the splitting
// engine.
type legacyState struct {
	ev     *mapping.Evaluator
	ivs    []mapping.Interval
	cycles []float64
	lat    float64
	free   []int
}

func legacyNewState(ev *mapping.Evaluator) (*legacyState, error) {
	plat := ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		return nil, unsupportedPlatform(plat.Kind())
	}
	app := ev.Pipeline()
	order := plat.FastestFirst()
	first := order[0]
	st := &legacyState{
		ev:   ev,
		ivs:  []mapping.Interval{{Start: 1, End: app.Stages(), Proc: first}},
		free: order[1:],
	}
	st.cycles = []float64{ev.Cycle(1, app.Stages(), first)}
	st.lat = st.latencyContribution(1, app.Stages(), first) + app.Delta(app.Stages())/plat.Bandwidth()
	return st, nil
}

func (st *legacyState) latencyContribution(d, e, u int) float64 {
	app, plat := st.ev.Pipeline(), st.ev.Platform()
	return app.Delta(d-1)/plat.Bandwidth() + app.IntervalWork(d, e)/plat.Speed(u)
}

func (st *legacyState) period() float64 {
	max := st.cycles[0]
	for _, c := range st.cycles[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

func (st *legacyState) bottleneck() int {
	best := 0
	for j, c := range st.cycles {
		if c > st.cycles[best] {
			best = j
		}
	}
	return best
}

func (st *legacyState) latency() float64 { return st.lat }

func (st *legacyState) mapping() *mapping.Mapping {
	return mapping.MustNew(st.ev.Pipeline(), st.ev.Platform(), st.ivs)
}

type legacyPart struct {
	d, e, proc int
	cycle      float64
}

type legacyCandidate struct {
	parts    []legacyPart
	maxCycle float64
	dLat     float64
	ratio    float64
}

func (st *legacyState) buildCandidate(idx int, parts []legacyPart) legacyCandidate {
	oldCycle := st.cycles[idx]
	iv := st.ivs[idx]
	oldLat := st.latencyContribution(iv.Start, iv.End, iv.Proc)
	newLat := 0.0
	maxCycle := 0.0
	ratio := math.Inf(-1)
	for i := range parts {
		p := &parts[i]
		p.cycle = st.ev.Cycle(p.d, p.e, p.proc)
		if p.cycle > maxCycle {
			maxCycle = p.cycle
		}
		newLat += st.latencyContribution(p.d, p.e, p.proc)
	}
	dLat := newLat - oldLat
	for _, p := range parts {
		dp := oldCycle - p.cycle
		if dp <= relEps*(1+oldCycle) {
			ratio = math.Inf(1)
			break
		}
		if r := dLat / dp; r > ratio {
			ratio = r
		}
	}
	return legacyCandidate{parts: parts, maxCycle: maxCycle, dLat: dLat, ratio: ratio}
}

func legacyBetter(rule selectRule, a, b legacyCandidate) bool {
	switch rule {
	case selectMono:
		if a.maxCycle != b.maxCycle {
			return a.maxCycle < b.maxCycle
		}
		return a.dLat < b.dLat
	default: // selectBi
		if a.ratio != b.ratio {
			return a.ratio < b.ratio
		}
		return a.maxCycle < b.maxCycle
	}
}

func (st *legacyState) bestSplit(idx int, opt splitOptions) (legacyCandidate, bool) {
	iv := st.ivs[idx]
	oldCycle := st.cycles[idx]
	var best legacyCandidate
	found := false
	consider := func(parts []legacyPart) {
		c := st.buildCandidate(idx, parts)
		if !lt(c.maxCycle, oldCycle) {
			return
		}
		if !leq(st.lat+c.dLat, opt.maxLatency) {
			return
		}
		if !found || legacyBetter(opt.rule, c, best) {
			best, found = c, true
		}
	}

	nFree := len(st.free)
	if nFree == 0 {
		return legacyCandidate{}, false
	}
	stages := iv.End - iv.Start + 1

	if opt.threeWay && nFree >= 2 && stages >= 3 {
		j1, j2 := st.free[0], st.free[1]
		procs := [3]int{iv.Proc, j1, j2}
		perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for k1 := iv.Start; k1 < iv.End; k1++ {
			for k2 := k1 + 1; k2 < iv.End; k2++ {
				bounds := [3][2]int{{iv.Start, k1}, {k1 + 1, k2}, {k2 + 1, iv.End}}
				for _, pm := range perms {
					parts := []legacyPart{
						{d: bounds[0][0], e: bounds[0][1], proc: procs[pm[0]]},
						{d: bounds[1][0], e: bounds[1][1], proc: procs[pm[1]]},
						{d: bounds[2][0], e: bounds[2][1], proc: procs[pm[2]]},
					}
					consider(parts)
				}
			}
		}
		if found {
			return best, true
		}
	}

	if stages < 2 {
		return legacyCandidate{}, false
	}
	j1 := st.free[0]
	for k := iv.Start; k < iv.End; k++ {
		consider([]legacyPart{{d: iv.Start, e: k, proc: iv.Proc}, {d: k + 1, e: iv.End, proc: j1}})
		consider([]legacyPart{{d: iv.Start, e: k, proc: j1}, {d: k + 1, e: iv.End, proc: iv.Proc}})
	}
	return best, found
}

func (st *legacyState) apply(idx int, c legacyCandidate) {
	iv := st.ivs[idx]
	newIvs := make([]mapping.Interval, 0, len(st.ivs)+len(c.parts)-1)
	newCycles := make([]float64, 0, cap(newIvs))
	newIvs = append(newIvs, st.ivs[:idx]...)
	newCycles = append(newCycles, st.cycles[:idx]...)
	usedNew := make(map[int]bool, 2)
	for _, p := range c.parts {
		newIvs = append(newIvs, mapping.Interval{Start: p.d, End: p.e, Proc: p.proc})
		newCycles = append(newCycles, p.cycle)
		if p.proc != iv.Proc {
			usedNew[p.proc] = true
		}
	}
	newIvs = append(newIvs, st.ivs[idx+1:]...)
	newCycles = append(newCycles, st.cycles[idx+1:]...)
	st.ivs, st.cycles = newIvs, newCycles
	st.lat += c.dLat
	remaining := st.free[:0]
	for _, u := range st.free {
		if !usedNew[u] {
			remaining = append(remaining, u)
		}
	}
	st.free = remaining
}

func (st *legacyState) splitUntil(target float64, opt splitOptions) bool {
	for !leq(st.period(), target) {
		idx := st.bottleneck()
		c, ok := st.bestSplit(idx, opt)
		if !ok {
			return false
		}
		st.apply(idx, c)
	}
	return true
}

func (st *legacyState) result() Result {
	m := st.mapping()
	return Result{Mapping: m, Metrics: mapping.Metrics{Period: st.period(), Latency: st.latency()}}
}

// --- legacy heuristic entry points -------------------------------------

func legacyPeriodConstrained(ev *mapping.Evaluator, maxPeriod float64, opt splitOptions, name string) (Result, error) {
	st, err := legacyNewState(ev)
	if err != nil {
		return Result{}, err
	}
	ok := st.splitUntil(maxPeriod, opt)
	res := st.result()
	if !ok {
		return res, &InfeasibleError{Heuristic: name, Constraint: "period", Target: maxPeriod, Achieved: res.Metrics.Period, Best: res}
	}
	return res, nil
}

func legacyH1(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return legacyPeriodConstrained(ev, maxPeriod, splitOptions{rule: selectMono, maxLatency: math.Inf(1)}, SpMonoP{}.Name())
}

func legacyH2(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return legacyPeriodConstrained(ev, maxPeriod, splitOptions{rule: selectMono, threeWay: true, maxLatency: math.Inf(1)}, ThreeExploMono{}.Name())
}

func legacyH3(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return legacyPeriodConstrained(ev, maxPeriod, splitOptions{rule: selectBi, threeWay: true, maxLatency: math.Inf(1)}, ThreeExploBi{}.Name())
}

func legacyH4(ev *mapping.Evaluator, maxPeriod float64, iters int) (Result, error) {
	if iters <= 0 {
		iters = DefaultBinaryIters
	}
	trial := func(latCap float64) (Result, bool) {
		st, err := legacyNewState(ev)
		if err != nil {
			panic(err) // legacyH4 is only driven on comm-homogeneous oracles
		}
		opt := splitOptions{rule: selectBi, maxLatency: latCap}
		ok := st.splitUntil(maxPeriod, opt)
		return st.result(), ok
	}
	best, ok := trial(math.Inf(1))
	if !ok {
		return best, &InfeasibleError{Heuristic: SpBiP{}.Name(), Constraint: "period", Target: maxPeriod, Achieved: best.Metrics.Period, Best: best}
	}
	_, lo := ev.OptimalLatency()
	hi := best.Metrics.Latency
	for i := 0; i < iters && hi-lo > relEps*(1+hi); i++ {
		mid := (lo + hi) / 2
		if res, ok := trial(mid); ok {
			if res.Metrics.Latency < best.Metrics.Latency {
				best = res
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, nil
}

func legacyLatencyConstrained(ev *mapping.Evaluator, maxLatency float64, opt splitOptions, name string) (Result, error) {
	st, err := legacyNewState(ev)
	if err != nil {
		return Result{}, err
	}
	if !leq(st.latency(), maxLatency) {
		res := st.result()
		return res, &InfeasibleError{Heuristic: name, Constraint: "latency", Target: maxLatency, Achieved: res.Metrics.Latency, Best: res}
	}
	opt.maxLatency = maxLatency
	st.splitUntil(0, opt)
	return st.result(), nil
}

func legacyH5(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return legacyLatencyConstrained(ev, maxLatency, splitOptions{rule: selectMono}, SpMonoL{}.Name())
}

func legacyH6(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return legacyLatencyConstrained(ev, maxLatency, splitOptions{rule: selectBi}, SpBiL{}.Name())
}

func legacyX7(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return legacyLatencyConstrained(ev, maxLatency, splitOptions{rule: selectMono, threeWay: true}, ThreeExploMonoL{}.Name())
}

func legacyX8(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return legacyLatencyConstrained(ev, maxLatency, splitOptions{rule: selectBi, threeWay: true}, ThreeExploBiL{}.Name())
}

// --- legacy fully heterogeneous splitter --------------------------------

func legacySplitFullyHet(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	plat := ev.Platform()
	app := ev.Pipeline()
	cur := mapping.SingleProcessor(app, plat, plat.Fastest())
	curPeriod := ev.Period(cur)
	used := map[int]bool{plat.Fastest(): true}

	for !leq(curPeriod, maxPeriod) {
		best, bestPeriod, bestLatency := legacyTryAllSplits(ev, cur, curPeriod, used)
		if best == nil {
			res := Result{Mapping: cur, Metrics: ev.Metrics(cur)}
			return res, &InfeasibleError{
				Heuristic: "Split fully-het", Constraint: "period",
				Target: maxPeriod, Achieved: curPeriod, Best: res,
			}
		}
		_ = bestLatency
		cur, curPeriod = best, bestPeriod
		used = map[int]bool{}
		for _, u := range cur.Processors() {
			used[u] = true
		}
	}
	return Result{Mapping: cur, Metrics: ev.Metrics(cur)}, nil
}

func legacyTryAllSplits(ev *mapping.Evaluator, cur *mapping.Mapping, curPeriod float64, used map[int]bool) (*mapping.Mapping, float64, float64) {
	app, plat := ev.Pipeline(), ev.Platform()
	ivs := cur.Intervals()

	bIdx, bCycle := 0, math.Inf(-1)
	for j, iv := range ivs {
		prev, next := 0, 0
		if j > 0 {
			prev = ivs[j-1].Proc
		}
		if j < len(ivs)-1 {
			next = ivs[j+1].Proc
		}
		in, comp, out := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, next)
		if c := in + comp + out; c > bCycle {
			bIdx, bCycle = j, c
		}
	}
	iv := ivs[bIdx]
	if iv.Start == iv.End {
		return nil, 0, 0
	}

	var best *mapping.Mapping
	bestPeriod := math.Inf(1)
	bestLatency := math.Inf(1)
	consider := func(trial []mapping.Interval) {
		m, err := mapping.New(app, plat, trial)
		if err != nil {
			return
		}
		p := ev.Period(m)
		if !lt(p, curPeriod) {
			return
		}
		l := ev.Latency(m)
		if p < bestPeriod-relEps || (p < bestPeriod+relEps && l < bestLatency) {
			best, bestPeriod, bestLatency = m, p, l
		}
	}
	for u := 1; u <= plat.Processors(); u++ {
		if used[u] {
			continue
		}
		for k := iv.Start; k < iv.End; k++ {
			for _, order := range [2][2]int{{iv.Proc, u}, {u, iv.Proc}} {
				trial := make([]mapping.Interval, 0, len(ivs)+1)
				trial = append(trial, ivs[:bIdx]...)
				trial = append(trial,
					mapping.Interval{Start: iv.Start, End: k, Proc: order[0]},
					mapping.Interval{Start: k + 1, End: iv.End, Proc: order[1]})
				trial = append(trial, ivs[bIdx+1:]...)
				consider(trial)
			}
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	return best, bestPeriod, bestLatency
}
