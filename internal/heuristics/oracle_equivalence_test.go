package heuristics

// Property tests driving the pooled engine against the frozen legacy
// oracle (legacy_oracle_test.go): on every workload family of the paper,
// every heuristic must return bit-identical intervals, metrics and
// InfeasibleError payloads. The suite runs under -race in CI, so the
// pooled scratch reuse is also exercised for aliasing bugs when the
// comparison fans out across goroutines.

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/workload"
)

// requireSameResult fails unless a and b are bitwise identical: metrics,
// interval structure and processor assignment.
func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Float64bits(got.Metrics.Period) != math.Float64bits(want.Metrics.Period) ||
		math.Float64bits(got.Metrics.Latency) != math.Float64bits(want.Metrics.Latency) {
		t.Fatalf("%s: metrics %+v != oracle %+v", label, got.Metrics, want.Metrics)
	}
	if (got.Mapping == nil) != (want.Mapping == nil) {
		t.Fatalf("%s: mapping nil-ness differs (%v vs %v)", label, got.Mapping, want.Mapping)
	}
	if got.Mapping == nil {
		return
	}
	gi, wi := got.Mapping.Intervals(), want.Mapping.Intervals()
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d intervals != oracle %d", label, len(gi), len(wi))
	}
	for j := range gi {
		if gi[j] != wi[j] {
			t.Fatalf("%s: interval %d: %v != oracle %v", label, j, gi[j], wi[j])
		}
	}
}

// requireSameError fails unless both errors are nil or carry identical
// InfeasibleError payloads (constraint, target, achieved, best result).
func requireSameError(t *testing.T, label string, got, want error) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: err %v != oracle err %v", label, got, want)
	}
	if got == nil {
		return
	}
	var gi, wi *InfeasibleError
	if !errors.As(got, &gi) || !errors.As(want, &wi) {
		t.Fatalf("%s: non-InfeasibleError: %v vs %v", label, got, want)
	}
	if gi.Heuristic != wi.Heuristic || gi.Constraint != wi.Constraint ||
		math.Float64bits(gi.Target) != math.Float64bits(wi.Target) ||
		math.Float64bits(gi.Achieved) != math.Float64bits(wi.Achieved) {
		t.Fatalf("%s: payload %+v != oracle %+v", label, gi, wi)
	}
	requireSameResult(t, label+"/Best", gi.Best, wi.Best)
}

// oraclePeriodRuns pairs each period-constrained heuristic with its
// frozen counterpart.
func oraclePeriodRuns() []struct {
	id     string
	pooled func(*mapping.Evaluator, float64) (Result, error)
	legacy func(*mapping.Evaluator, float64) (Result, error)
} {
	return []struct {
		id     string
		pooled func(*mapping.Evaluator, float64) (Result, error)
		legacy func(*mapping.Evaluator, float64) (Result, error)
	}{
		{"H1", SpMonoP{}.MinimizeLatency, legacyH1},
		{"H2", ThreeExploMono{}.MinimizeLatency, legacyH2},
		{"H3", ThreeExploBi{}.MinimizeLatency, legacyH3},
		{"H4", SpBiP{}.MinimizeLatency, func(ev *mapping.Evaluator, b float64) (Result, error) { return legacyH4(ev, b, 0) }},
	}
}

// oracleLatencyRuns pairs each latency-constrained heuristic (including
// the X7/X8 extensions) with its frozen counterpart.
func oracleLatencyRuns() []struct {
	id     string
	pooled func(*mapping.Evaluator, float64) (Result, error)
	legacy func(*mapping.Evaluator, float64) (Result, error)
} {
	return []struct {
		id     string
		pooled func(*mapping.Evaluator, float64) (Result, error)
		legacy func(*mapping.Evaluator, float64) (Result, error)
	}{
		{"H5", SpMonoL{}.MinimizePeriod, legacyH5},
		{"H6", SpBiL{}.MinimizePeriod, legacyH6},
		{"X7", ThreeExploMonoL{}.MinimizePeriod, legacyX7},
		{"X8", ThreeExploBiL{}.MinimizePeriod, legacyX8},
	}
}

// comparePooledToLegacy exercises every heuristic on one instance across
// a spread of feasible and infeasible bounds.
func comparePooledToLegacy(t *testing.T, label string, ev *mapping.Evaluator) {
	t.Helper()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	p0 := ev.Period(single)
	for _, factor := range []float64{0.05, 0.3, 0.55, 0.8, 1.01} {
		bound := p0 * factor
		for _, run := range oraclePeriodRuns() {
			got, gotErr := run.pooled(ev, bound)
			want, wantErr := run.legacy(ev, bound)
			lbl := label + "/" + run.id
			requireSameResult(t, lbl, got, want)
			requireSameError(t, lbl, gotErr, wantErr)
		}
	}
	optLat := ev.OptimalLatencyValue()
	for _, factor := range []float64{0.9, 1.0, 1.2, 1.7, 2.5} {
		budget := optLat * factor
		for _, run := range oracleLatencyRuns() {
			got, gotErr := run.pooled(ev, budget)
			want, wantErr := run.legacy(ev, budget)
			lbl := label + "/" + run.id
			requireSameResult(t, lbl, got, want)
			requireSameError(t, lbl, gotErr, wantErr)
		}
	}
}

// TestPooledEngineMatchesLegacyOracle drives every heuristic across the
// paper's four workload families and seeded sizes: the pooled engine and
// the frozen allocating engine must agree bit for bit everywhere.
func TestPooledEngineMatchesLegacyOracle(t *testing.T) {
	for _, fam := range workload.Families() {
		for _, shape := range []struct{ n, p int }{{6, 4}, {10, 6}, {12, 10}} {
			for seed := int64(0); seed < 3; seed++ {
				in := workload.Generate(workload.Config{
					Family: fam, Stages: shape.n, Processors: shape.p,
					Seed: 42000 + seed,
				})
				label := fam.String()
				comparePooledToLegacy(t, label, in.Evaluator())
			}
		}
	}
}

// TestPooledEngineMatchesLegacyOracleRandom adds rough random instances
// (duplicate speeds, zero communications, single stages) beyond the
// calibrated families.
func TestPooledEngineMatchesLegacyOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		ev := randEvaluator(r, 9, 7)
		comparePooledToLegacy(t, "rand", ev)
	}
}

// TestPooledEngineMatchesOracleConcurrently hammers one shared evaluator
// from many goroutines, each comparing pooled against legacy runs: under
// -race this proves concurrent solves never share scratch state, and that
// pooled reuse cannot leak one race's buffers into another's results.
func TestPooledEngineMatchesOracleConcurrently(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: 10, Processors: 8, Seed: 4242})
	ev := in.Evaluator()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	p0 := ev.Period(single)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bound := p0 * (0.2 + 0.1*float64(w))
			for i := 0; i < 5; i++ {
				for _, run := range oraclePeriodRuns() {
					got, gotErr := run.pooled(ev, bound)
					want, wantErr := run.legacy(ev, bound)
					requireSameResult(t, "conc/"+run.id, got, want)
					requireSameError(t, "conc/"+run.id, gotErr, wantErr)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFullyHetMatchesLegacyOracle compares the scratch-based fully
// heterogeneous splitter against its frozen mapping-per-trial original on
// random link matrices.
func TestFullyHetMatchesLegacyOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		p := 2 + r.Intn(6)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(20))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(30))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(10))
		}
		links := make([][]float64, p)
		for u := range links {
			links[u] = make([]float64, p)
		}
		for u := 0; u < p; u++ {
			for v := u + 1; v < p; v++ {
				b := float64(1 + r.Intn(10))
				links[u][v], links[v][u] = b, b
			}
		}
		plat, err := platform.NewFullyHeterogeneous(speeds, links)
		if err != nil {
			t.Fatal(err)
		}
		ev := mapping.NewEvaluator(pipeline.MustNew(works, deltas), plat)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		for _, factor := range []float64{0, 0.4, 0.7, 1.01} {
			bound := p0 * factor
			got, gotErr := SplitFullyHet(ev, bound)
			want, wantErr := legacySplitFullyHet(ev, bound)
			requireSameResult(t, "fullhet", got, want)
			requireSameError(t, "fullhet", gotErr, wantErr)
		}
		// The comm-homogeneous degenerate case must agree too.
		hom := mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
		got, gotErr := SplitFullyHet(hom, p0*0.5)
		want, wantErr := legacySplitFullyHet(hom, p0*0.5)
		requireSameResult(t, "fullhet/hom", got, want)
		requireSameError(t, "fullhet/hom", gotErr, wantErr)
	}
}
