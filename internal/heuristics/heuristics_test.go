package heuristics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/exact"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func randEvaluator(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 1 + r.Intn(maxP)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

func TestRegistry(t *testing.T) {
	ph := PeriodHeuristics()
	if len(ph) != 4 {
		t.Fatalf("PeriodHeuristics: %d entries, want 4", len(ph))
	}
	wantIDs := []string{"H1", "H2", "H3", "H4"}
	wantNames := []string{"Sp mono, P fix", "3-Explo mono", "3-Explo bi", "Sp bi, P fix"}
	for i, h := range ph {
		if h.ID() != wantIDs[i] || h.Name() != wantNames[i] {
			t.Errorf("heuristic %d: (%s, %s), want (%s, %s)", i, h.ID(), h.Name(), wantIDs[i], wantNames[i])
		}
	}
	lh := LatencyHeuristics()
	if len(lh) != 2 {
		t.Fatalf("LatencyHeuristics: %d entries, want 2", len(lh))
	}
	if lh[0].ID() != "H5" || lh[1].ID() != "H6" {
		t.Errorf("latency heuristic IDs: %s, %s", lh[0].ID(), lh[1].ID())
	}
}

// With a generous period bound every period-constrained heuristic must
// return the latency-optimal single-processor mapping unchanged.
func TestPeriodHeuristicsTrivialBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ev := randEvaluator(r, 8, 5)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		_, optLat := ev.OptimalLatency()
		for _, h := range PeriodHeuristics() {
			res, err := h.MinimizeLatency(ev, p0*1.01)
			if err != nil {
				t.Fatalf("%s: unexpected failure: %v", h.ID(), err)
			}
			if math.Abs(res.Metrics.Latency-optLat) > 1e-9 {
				t.Errorf("%s: latency %g at trivial bound, want optimal %g", h.ID(), res.Metrics.Latency, optLat)
			}
			if res.Mapping.Size() != 1 {
				t.Errorf("%s: %d intervals at trivial bound, want 1", h.ID(), res.Mapping.Size())
			}
		}
	}
}

// Heuristic results must respect their constraint and be valid mappings.
func TestPeriodHeuristicsRespectBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		bound := p0 * (0.2 + 0.8*r.Float64())
		for _, h := range PeriodHeuristics() {
			res, err := h.MinimizeLatency(ev, bound)
			if err != nil {
				var inf *InfeasibleError
				if !errors.As(err, &inf) {
					return false
				}
				// On failure the best mapping must still be valid
				// and its period above the bound.
				if inf.Best.Metrics.Period <= bound*(1-1e-9) {
					return false
				}
				continue
			}
			if res.Metrics.Period > bound*(1+1e-6) {
				return false
			}
			// Reported metrics must match a re-evaluation.
			if math.Abs(ev.Period(res.Mapping)-res.Metrics.Period) > 1e-9*(1+res.Metrics.Period) {
				return false
			}
			if math.Abs(ev.Latency(res.Mapping)-res.Metrics.Latency) > 1e-9*(1+res.Metrics.Latency) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLatencyHeuristicsRespectBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		_, optLat := ev.OptimalLatency()
		bound := optLat * (0.8 + 1.7*r.Float64()) // sometimes infeasible
		for _, h := range LatencyHeuristics() {
			res, err := h.MinimizePeriod(ev, bound)
			if err != nil {
				var inf *InfeasibleError
				if !errors.As(err, &inf) {
					return false
				}
				// Fails exactly when the bound is below optimum.
				if bound >= optLat*(1+1e-9) {
					return false
				}
				continue
			}
			if bound < optLat*(1-1e-9) {
				return false // should have failed
			}
			if res.Metrics.Latency > bound*(1+1e-6) {
				return false
			}
			if math.Abs(ev.Latency(res.Mapping)-res.Metrics.Latency) > 1e-9*(1+res.Metrics.Latency) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Heuristic latencies can never beat the exact optimum for the same period
// bound, and heuristic periods can never beat the exact optimum for the
// same latency bound (admissibility against the DP oracle).
func TestHeuristicsNeverBeatExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 7, 5)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		bound := p0 * (0.3 + 0.7*r.Float64())
		for _, h := range PeriodHeuristics() {
			res, err := h.MinimizeLatency(ev, bound)
			if err != nil {
				continue
			}
			opt, err := exact.MinLatencyUnderPeriod(ev, bound)
			if err != nil {
				return false // heuristic feasible but exact not: impossible
			}
			if res.Metrics.Latency < opt.Metrics.Latency-1e-9 {
				return false
			}
		}
		_, optLat := ev.OptimalLatency()
		lBound := optLat * (1 + 1.5*r.Float64())
		for _, h := range LatencyHeuristics() {
			res, err := h.MinimizePeriod(ev, lBound)
			if err != nil {
				continue
			}
			opt, err := exact.MinPeriodUnderLatency(ev, lBound)
			if err != nil {
				return false
			}
			if res.Metrics.Period < opt.Metrics.Period-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Monotonicity of the splitter: a looser period bound never yields a
// larger latency for the splitting heuristics (they stop earlier).
func TestSpMonoPMonotoneInBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		b1 := p0 * (0.3 + 0.4*r.Float64())
		b2 := b1 * (1 + r.Float64()) // b2 ≥ b1
		h := SpMonoP{}
		r1, err1 := h.MinimizeLatency(ev, b1)
		r2, err2 := h.MinimizeLatency(ev, b2)
		if err1 != nil {
			return true // tighter bound failed; nothing to compare
		}
		if err2 != nil {
			return false // looser bound cannot fail if tighter succeeded
		}
		return r2.Metrics.Latency <= r1.Metrics.Latency+1e-9
	}
	// Fixed generator for the same reason as TestLatencyHeuristicsMonotone:
	// greedy monotonicity is an empirical tendency, not a theorem.
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The latency-constrained heuristics are usually monotone: more latency
// budget rarely yields a worse period. The property is not a theorem —
// the greedy processor assignment can commit differently under a looser
// budget and end strictly worse (input 324563496677633902 drives H5 from
// period 4 at budget 8.35 to period 4.73 at budget 12.88, on the seed
// code as well) — so this check runs on a fixed generator rather than a
// fresh random seed per run, keeping the suite deterministic while still
// covering 120 drawn instances.
func TestLatencyHeuristicsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		_, optLat := ev.OptimalLatency()
		b1 := optLat * (1 + r.Float64())
		b2 := b1 * (1 + r.Float64())
		for _, h := range LatencyHeuristics() {
			r1, err1 := h.MinimizePeriod(ev, b1)
			r2, err2 := h.MinimizePeriod(ev, b2)
			if err1 != nil || err2 != nil {
				return false // both bounds ≥ optLat: must succeed
			}
			if r2.Metrics.Period > r1.Metrics.Period+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestH5NonMonotoneCounterexample pins the ROADMAP open item with its
// fixed input: the instance drawn by seed 324563496677633902 of
// TestLatencyHeuristicsMonotone drives H5 (Sp mono, L fix) from period 4
// at latency budget ≈8.349 to period ≈4.729 at the LOOSER budget
// ≈12.876 — the greedy assignment commits differently and ends strictly
// worse. The counterexample reproduces on the seed code, the PR-2 code
// and the pooled engine alike; this regression test hardcodes the
// instance so the behaviour (and the open item) stays pinned whatever
// the generator does.
func TestH5NonMonotoneCounterexample(t *testing.T) {
	app := pipeline.MustNew(
		[]float64{2, 3, 7, 19, 11, 4, 1, 2, 13, 8},
		[]float64{11, 0, 10, 19, 2, 25, 6, 22, 26, 0, 7})
	plat := platform.MustNew([]float64{15, 7, 6}, 10)
	ev := mapping.NewEvaluator(app, plat)
	b1, b2 := 8.349181817074646, 12.876436154280197
	r1, err1 := SpMonoL{}.MinimizePeriod(ev, b1)
	r2, err2 := SpMonoL{}.MinimizePeriod(ev, b2)
	if err1 != nil || err2 != nil {
		t.Fatalf("unexpected failure: %v / %v", err1, err2)
	}
	if math.Abs(r1.Metrics.Period-4) > 1e-9 {
		t.Errorf("H5 at budget %g: period %v, want 4", b1, r1.Metrics.Period)
	}
	if math.Abs(r2.Metrics.Period-4.728571428571429) > 1e-9 {
		t.Errorf("H5 at budget %g: period %v, want 4.728571428571429", b2, r2.Metrics.Period)
	}
	if r2.Metrics.Period <= r1.Metrics.Period+1e-9 {
		t.Error("counterexample vanished: H5 became monotone on the fixed input — update ROADMAP.md's open item")
	}
}

func TestMinAchievablePeriodIsThreshold(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 8, 5)
		for _, h := range PeriodHeuristics() {
			p0, err := MinAchievablePeriod(ev, h)
			if err != nil {
				return false
			}
			// Succeeds exactly at the threshold...
			if _, err := h.MinimizeLatency(ev, p0*(1+1e-6)); err != nil {
				return false
			}
			// ...and fails measurably below it.
			if _, err := h.MinimizeLatency(ev, p0*0.98-1e-6); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The paper's Table-1 observation: H5 and H6 share their failure
// threshold, which equals the optimal latency.
func TestLatencyFailureThreshold(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		th := LatencyFailureThreshold(ev)
		_, optLat := ev.OptimalLatency()
		if th != optLat {
			return false
		}
		for _, h := range LatencyHeuristics() {
			if _, err := h.MinimizePeriod(ev, th); err != nil {
				return false
			}
			if _, err := h.MinimizePeriod(ev, th*0.98-1e-6); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Hand-checked instance: 2 stages w={8,8}, δ={0,4,0}, speeds {4,2}, b=1.
// Single mapping on P1: period = 16/4 = 4, latency 4.
// Split {S1→P1, S2→P2}: cycles = 8/4+4 = 6 and 4+8/2 = 8 → period 8: worse.
// Split {S1→P2, S2→P1}: cycles = 8/2+4 = 8, 4+8/4 = 6 → period 8: worse.
// So no split improves: SpMonoP succeeds only for bounds ≥ 4.
func TestSplitRejectsWorseningCuts(t *testing.T) {
	app := pipeline.MustNew([]float64{8, 8}, []float64{0, 4, 0})
	plat := platform.MustNew([]float64{4, 2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	h := SpMonoP{}
	res, err := h.MinimizeLatency(ev, 4)
	if err != nil {
		t.Fatalf("bound 4 should be feasible: %v", err)
	}
	if res.Mapping.Size() != 1 {
		t.Errorf("expected no split, got %v", res.Mapping)
	}
	if _, err := h.MinimizeLatency(ev, 3.9); err == nil {
		t.Error("bound 3.9 should be infeasible (no improving split exists)")
	}
}

// Hand-checked instance where splitting helps: w={10,10}, δ=0 everywhere,
// speeds {2,2}, b=1. Single: period 10. Split: each cycle 5 → period 5,
// latency 10.
func TestSplitImprovesWhenProfitable(t *testing.T) {
	app := pipeline.MustNew([]float64{10, 10}, []float64{0, 0, 0})
	plat := platform.MustNew([]float64{2, 2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	res, err := SpMonoP{}.MinimizeLatency(ev, 5)
	if err != nil {
		t.Fatalf("bound 5 should be feasible: %v", err)
	}
	if res.Mapping.Size() != 2 {
		t.Errorf("expected a split, got %v", res.Mapping)
	}
	if math.Abs(res.Metrics.Period-5) > 1e-9 || math.Abs(res.Metrics.Latency-10) > 1e-9 {
		t.Errorf("metrics = %+v, want period 5, latency 10", res.Metrics)
	}
}

// 3-Explo on a 3-stage pipeline with 3 equal processors must reach the
// perfectly balanced 3-way split in one step.
func TestThreeExploSplitsInOneStep(t *testing.T) {
	app := pipeline.MustNew([]float64{6, 6, 6}, make([]float64, 4))
	plat := platform.MustNew([]float64{3, 3, 3}, 1)
	ev := mapping.NewEvaluator(app, plat)
	for _, h := range []PeriodConstrained{ThreeExploMono{}, ThreeExploBi{}} {
		res, err := h.MinimizeLatency(ev, 2)
		if err != nil {
			t.Fatalf("%s: %v", h.ID(), err)
		}
		if res.Mapping.Size() != 3 {
			t.Errorf("%s: mapping %v, want 3 singleton intervals", h.ID(), res.Mapping)
		}
		if math.Abs(res.Metrics.Period-2) > 1e-9 {
			t.Errorf("%s: period %g, want 2", h.ID(), res.Metrics.Period)
		}
	}
}

// 3-Explo must fall back to 2-way splits when only one processor remains
// unused (p = 2) and still satisfy reachable bounds.
func TestThreeExploFallbackTwoProcessors(t *testing.T) {
	app := pipeline.MustNew([]float64{10, 10}, make([]float64, 3))
	plat := platform.MustNew([]float64{2, 2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	res, err := ThreeExploMono{}.MinimizeLatency(ev, 5)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if res.Mapping.Size() != 2 {
		t.Errorf("mapping %v, want 2 intervals", res.Mapping)
	}
}

// 3-Explo must also fall back when the bottleneck interval has only two
// stages (no room for three parts).
func TestThreeExploFallbackShortInterval(t *testing.T) {
	app := pipeline.MustNew([]float64{10, 10}, make([]float64, 3))
	plat := platform.MustNew([]float64{2, 2, 2, 2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	res, err := ThreeExploMono{}.MinimizeLatency(ev, 5)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if math.Abs(res.Metrics.Period-5) > 1e-9 {
		t.Errorf("period %g, want 5", res.Metrics.Period)
	}
}

// SpBiP must never return a worse latency than its own unconstrained trial
// and must keep the period feasible on every success.
func TestSpBiPBinarySearchImproves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 10, 6)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		bound := p0 * (0.3 + 0.6*r.Float64())
		res, err := SpBiP{}.MinimizeLatency(ev, bound)
		if err != nil {
			return true
		}
		if res.Metrics.Period > bound*(1+1e-6) {
			return false
		}
		// Compare against SpMonoL-style unconstrained bi splitter: the
		// binary search result can only have smaller or equal latency
		// than the +Inf-cap trial, which is what a degenerate
		// 1-iteration search would return.
		oneIter, err := SpBiP{Iterations: 1}.MinimizeLatency(ev, bound)
		if err != nil {
			return false
		}
		return res.Metrics.Latency <= oneIter.Metrics.Latency+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// On single-processor platforms every heuristic degenerates gracefully.
func TestSingleProcessorPlatform(t *testing.T) {
	app := pipeline.MustNew([]float64{5, 5}, []float64{1, 1, 1})
	plat := platform.MustNew([]float64{2}, 10)
	ev := mapping.NewEvaluator(app, plat)
	// Period of the only mapping: 0.1 + 5 + 0.1 = 5.2; latency the same.
	for _, h := range PeriodHeuristics() {
		if res, err := h.MinimizeLatency(ev, 5.2); err != nil || res.Mapping.Size() != 1 {
			t.Errorf("%s: res=%+v err=%v", h.ID(), res.Metrics, err)
		}
		if _, err := h.MinimizeLatency(ev, 5.0); err == nil {
			t.Errorf("%s: impossible bound accepted", h.ID())
		}
	}
	for _, h := range LatencyHeuristics() {
		if res, err := h.MinimizePeriod(ev, 5.2); err != nil || math.Abs(res.Metrics.Period-5.2) > 1e-9 {
			t.Errorf("%s: res=%+v err=%v", h.ID(), res.Metrics, err)
		}
	}
}

// Determinism: the same instance always produces the identical mapping.
func TestHeuristicsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ev := randEvaluator(r, 12, 8)
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	bound := ev.Period(single) * 0.5
	for _, h := range PeriodHeuristics() {
		a, errA := h.MinimizeLatency(ev, bound)
		b, errB := h.MinimizeLatency(ev, bound)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: non-deterministic feasibility", h.ID())
		}
		if errA == nil && a.Mapping.String() != b.Mapping.String() {
			t.Errorf("%s: non-deterministic mapping:\n%v\n%v", h.ID(), a.Mapping, b.Mapping)
		}
	}
}

// The heuristics must enroll processors fastest-first: every processor
// used in the result is at least as fast as every unused one (speeds drawn
// distinct to make the check exact).
func TestFastestProcessorsEnrolledFirst(t *testing.T) {
	app := pipeline.MustNew([]float64{9, 9, 9, 9}, make([]float64, 5))
	plat := platform.MustNew([]float64{1, 7, 3, 9, 5}, 10)
	ev := mapping.NewEvaluator(app, plat)
	res, err := SpMonoP{}.MinimizeLatency(ev, 2.5)
	if err != nil {
		t.Fatalf("unexpected failure: %v", err)
	}
	used := make(map[int]bool)
	for _, u := range res.Mapping.Processors() {
		used[u] = true
	}
	slowestUsed := math.Inf(1)
	fastestUnused := 0.0
	for u := 1; u <= 5; u++ {
		s := plat.Speed(u)
		if used[u] && s < slowestUsed {
			slowestUsed = s
		}
		if !used[u] && s > fastestUnused {
			fastestUnused = s
		}
	}
	if fastestUnused > slowestUsed {
		t.Errorf("used a slower processor (%g) while a faster one (%g) stayed idle: %v",
			slowestUsed, fastestUnused, res.Mapping)
	}
}

func TestInfeasibleErrorMessage(t *testing.T) {
	app := pipeline.MustNew([]float64{10}, []float64{0, 0})
	plat := platform.MustNew([]float64{2}, 1)
	ev := mapping.NewEvaluator(app, plat)
	_, err := SpMonoP{}.MinimizeLatency(ev, 1)
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *InfeasibleError", err)
	}
	if inf.Target != 1 || inf.Constraint != "period" || inf.Achieved != 5 {
		t.Errorf("InfeasibleError = %+v", inf)
	}
	if inf.Error() == "" {
		t.Error("empty error message")
	}
}

// TestEngineRejectsHeterogeneousPlatform pins the capability contract:
// every paper heuristic refuses a fully heterogeneous platform with the
// typed ErrUnsupportedPlatform — never a panic — on every exported entry
// point, while the fullhet lane accepts it.
func TestEngineRejectsHeterogeneousPlatform(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{1, 1}, []float64{1, 1, 1}), plat)
	for _, h := range PeriodHeuristics() {
		if h.Supports(plat) {
			t.Errorf("%s claims to support %v", h.ID(), plat.Kind())
		}
		if _, err := h.MinimizeLatency(ev, 1); !errors.Is(err, ErrUnsupportedPlatform) {
			t.Errorf("%s.MinimizeLatency: err = %v, want ErrUnsupportedPlatform", h.ID(), err)
		}
		if _, err := MinAchievablePeriod(ev, h); !errors.Is(err, ErrUnsupportedPlatform) {
			t.Errorf("MinAchievablePeriod(%s): err = %v, want ErrUnsupportedPlatform", h.ID(), err)
		}
	}
	for _, h := range append(LatencyHeuristics(), ExtensionLatencyHeuristics()...) {
		if h.Supports(plat) {
			t.Errorf("%s claims to support %v", h.ID(), plat.Kind())
		}
		if _, err := h.MinimizePeriod(ev, 1); !errors.Is(err, ErrUnsupportedPlatform) {
			t.Errorf("%s.MinimizePeriod: err = %v, want ErrUnsupportedPlatform", h.ID(), err)
		}
	}
	// The sweepers take the fresh-solve fallback and surface the same
	// typed error instead of panicking in their constructors.
	ps := NewPeriodSweeper(ev, SpMonoP{})
	defer ps.Close()
	if _, err := ps.Solve(1); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Errorf("PeriodSweeper.Solve: err = %v, want ErrUnsupportedPlatform", err)
	}
	ls := NewLatencySweeper(ev, SpMonoL{})
	defer ls.Close()
	if _, err := ls.Solve(1); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Errorf("LatencySweeper.Solve: err = %v, want ErrUnsupportedPlatform", err)
	}
	// The fullhet lane serves the same platform.
	for _, h := range FullHetPeriodHeuristics() {
		if !h.Supports(plat) {
			t.Errorf("%s rejects %v", h.ID(), plat.Kind())
		}
	}
	for _, h := range FullHetLatencyHeuristics() {
		if !h.Supports(plat) {
			t.Errorf("%s rejects %v", h.ID(), plat.Kind())
		}
	}
}
