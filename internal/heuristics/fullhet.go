package heuristics

import (
	"math"

	"pipesched/internal/mapping"
)

// SplitFullyHet extends the paper's splitting approach to fully
// heterogeneous platforms (the "future work" of Section 7). On such
// platforms an interval's cycle-time depends on the *links* to its
// neighbours, so two things change relative to the Communication
// Homogeneous engine:
//
//   - every candidate split is evaluated by re-scoring the whole trial
//     mapping (a split changes the neighbouring intervals' communication
//     costs too);
//   - the replacement processor is chosen among all unused processors,
//     not only the next fastest — a slower processor on a fast link can
//     beat a faster one behind a slow link.
//
// The selection rule is mono-criterion (minimise the trial period); the
// acceptance rule (strict period improvement) and the stopping condition
// match the homogeneous engine. It also runs, unchanged, on homogeneous
// platforms, where it degenerates to an H1 variant with free processor
// choice.
//
// Like the homogeneous engine, the splitter works on evaluator-leased
// scratch buffers: the current and trial interval lists live in one
// Scratch, candidates are scored with PeriodOf/LatencyOf on the raw
// slices, and the only allocation of a steady-state solve is the final
// Mapping. legacy_oracle_test.go retains the mapping-per-trial original
// as the bit-identity oracle.
func SplitFullyHet(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	plat, app := ev.Platform(), ev.Pipeline()
	sc := ev.LeaseScratch()
	cur := append(sc.Ivs[:0], mapping.Interval{Start: 1, End: app.Stages(), Proc: plat.Fastest()})
	trial := sc.Trial[:0]
	curPeriod := ev.PeriodOf(cur)

	finish := func(ivs []mapping.Interval) Result {
		m := mapping.MustNew(app, plat, ivs) // copies; scratch can be released
		res := Result{Mapping: m, Metrics: ev.Metrics(m)}
		sc.Ivs, sc.Trial = cur[:0], trial[:0]
		sc.Release()
		return res
	}

	for !leq(curPeriod, maxPeriod) {
		bIdx, bestK, bestLeft, bestRight, bestPeriod, ok := tryAllSplits(ev, cur, &trial, curPeriod)
		if !ok {
			res := finish(cur)
			return res, &InfeasibleError{
				Heuristic: "Split fully-het", Constraint: "period",
				Target: maxPeriod, Achieved: curPeriod, Best: res,
			}
		}
		// Rebuild the winning trial into the spare buffer and swap it in.
		iv := cur[bIdx]
		trial = append(trial[:0], cur[:bIdx]...)
		trial = append(trial,
			mapping.Interval{Start: iv.Start, End: bestK, Proc: bestLeft},
			mapping.Interval{Start: bestK + 1, End: iv.End, Proc: bestRight})
		trial = append(trial, cur[bIdx+1:]...)
		cur, trial = trial, cur
		curPeriod = bestPeriod
	}
	return finish(cur), nil
}

// tryAllSplits enumerates 2-way splits of the bottleneck interval with
// every unused processor in either order, scoring each trial in the
// reused buffer (*trialBuf, grown in place so its capacity persists
// across calls), and returns the winning split parameters, or ok=false
// when no trial strictly improves on curPeriod.
func tryAllSplits(ev *mapping.Evaluator, cur []mapping.Interval, trialBuf *[]mapping.Interval, curPeriod float64) (bIdx, bestK, bestLeft, bestRight int, bestPeriod float64, ok bool) {
	plat := ev.Platform()

	// Identify the bottleneck interval under the full heterogeneous
	// cost model.
	bCycle := math.Inf(-1)
	for j, iv := range cur {
		prev, next := 0, 0
		if j > 0 {
			prev = cur[j-1].Proc
		}
		if j < len(cur)-1 {
			next = cur[j+1].Proc
		}
		in, comp, out := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, next)
		if c := in + comp + out; c > bCycle {
			bIdx, bCycle = j, c
		}
	}
	iv := cur[bIdx]
	if iv.Start == iv.End {
		return 0, 0, 0, 0, 0, false
	}

	bestPeriod = math.Inf(1)
	bestLatency := math.Inf(1)
	for u := 1; u <= plat.Processors(); u++ {
		if usedIn(cur, u) {
			continue
		}
		for k := iv.Start; k < iv.End; k++ {
			for _, order := range [2][2]int{{iv.Proc, u}, {u, iv.Proc}} {
				trial := append((*trialBuf)[:0], cur[:bIdx]...)
				trial = append(trial,
					mapping.Interval{Start: iv.Start, End: k, Proc: order[0]},
					mapping.Interval{Start: k + 1, End: iv.End, Proc: order[1]})
				trial = append(trial, cur[bIdx+1:]...)
				*trialBuf = trial
				p := ev.PeriodOf(trial)
				if !lt(p, curPeriod) {
					continue
				}
				l := ev.LatencyOf(trial)
				if p < bestPeriod-relEps || (p < bestPeriod+relEps && l < bestLatency) {
					bestK, bestLeft, bestRight = k, order[0], order[1]
					bestPeriod, bestLatency, ok = p, l, true
				}
			}
		}
	}
	return bIdx, bestK, bestLeft, bestRight, bestPeriod, ok
}

// usedIn reports whether processor u executes one of the intervals. The
// list is at most p entries long, so the linear scan beats any
// heap-allocated set.
func usedIn(ivs []mapping.Interval, u int) bool {
	for _, iv := range ivs {
		if iv.Proc == u {
			return true
		}
	}
	return false
}

// MinAchievablePeriodFullyHet is the SplitFullyHet analogue of
// MinAchievablePeriod: the smallest period the heterogeneous splitter can
// reach on this instance.
func MinAchievablePeriodFullyHet(ev *mapping.Evaluator) float64 {
	res, err := SplitFullyHet(ev, 0)
	if err == nil {
		return res.Metrics.Period
	}
	if e, ok := err.(*InfeasibleError); ok {
		return e.Best.Metrics.Period
	}
	panic("heuristics: unexpected error from SplitFullyHet: " + err.Error())
}
