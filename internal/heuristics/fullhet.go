package heuristics

import (
	"errors"
	"math"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// SplitFullyHet extends the paper's splitting approach to fully
// heterogeneous platforms (the "future work" of Section 7). On such
// platforms an interval's cycle-time depends on the *links* to its
// neighbours, so two things change relative to the Communication
// Homogeneous engine:
//
//   - every candidate split is evaluated by re-scoring the whole trial
//     mapping (a split changes the neighbouring intervals' communication
//     costs too);
//   - the replacement processor is chosen among all unused processors,
//     not only the next fastest — a slower processor on a fast link can
//     beat a faster one behind a slow link.
//
// The selection rule is mono-criterion (minimise the trial period); the
// acceptance rule (strict period improvement) and the stopping condition
// match the homogeneous engine. It also runs, unchanged, on homogeneous
// platforms, where it degenerates to an H1 variant with free processor
// choice.
//
// Like the homogeneous engine, the splitter works on evaluator-leased
// scratch buffers: the current and trial interval lists live in one
// Scratch, candidates are scored with PeriodOf/LatencyOf on the raw
// slices, and the only allocation of a steady-state solve is the final
// Mapping. legacy_oracle_test.go retains the mapping-per-trial original
// as the bit-identity oracle.
func SplitFullyHet(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	plat, app := ev.Platform(), ev.Pipeline()
	sc := ev.LeaseScratch()
	cur := append(sc.Ivs[:0], mapping.Interval{Start: 1, End: app.Stages(), Proc: plat.Fastest()})
	trial := sc.Trial[:0]
	curPeriod := ev.PeriodOf(cur)

	finish := func(ivs []mapping.Interval) Result {
		m := mapping.MustNew(app, plat, ivs) // copies; scratch can be released
		res := Result{Mapping: m, Metrics: ev.Metrics(m)}
		sc.Ivs, sc.Trial = cur[:0], trial[:0]
		sc.Release()
		return res
	}

	for !leq(curPeriod, maxPeriod) {
		bIdx, bestK, bestLeft, bestRight, bestPeriod, _, ok := tryAllSplits(ev, cur, &trial, curPeriod, 0, math.Inf(1), selectMono)
		if !ok {
			res := finish(cur)
			return res, &InfeasibleError{
				Heuristic: "Split fully-het", Constraint: "period",
				Target: maxPeriod, Achieved: curPeriod, Best: res,
			}
		}
		// Rebuild the winning trial into the spare buffer and swap it in.
		iv := cur[bIdx]
		trial = append(trial[:0], cur[:bIdx]...)
		trial = append(trial,
			mapping.Interval{Start: iv.Start, End: bestK, Proc: bestLeft},
			mapping.Interval{Start: bestK + 1, End: iv.End, Proc: bestRight})
		trial = append(trial, cur[bIdx+1:]...)
		cur, trial = trial, cur
		curPeriod = bestPeriod
	}
	return finish(cur), nil
}

// splitFullyHetLatency is the latency-constrained side of the fullhet
// lane — the free-processor-choice analogue of H5 (mono rule) and H6
// (ratio rule). It starts from the single-interval mapping on the fastest
// processor (the same start as SplitFullyHet; when even that busts the
// budget the run is infeasible) and keeps applying the admissible split
// that the rule prefers, where admissible means: strictly smaller trial
// period AND trial latency within the budget. Every trial mapping is
// re-scored whole, as in SplitFullyHet, because neighbour links move.
func splitFullyHetLatency(ev *mapping.Evaluator, maxLatency float64, rule selectRule, name string) (Result, error) {
	plat, app := ev.Platform(), ev.Pipeline()
	sc := ev.LeaseScratch()
	cur := append(sc.Ivs[:0], mapping.Interval{Start: 1, End: app.Stages(), Proc: plat.Fastest()})
	trial := sc.Trial[:0]
	curPeriod := ev.PeriodOf(cur)
	curLatency := ev.LatencyOf(cur)

	finish := func(ivs []mapping.Interval) Result {
		m := mapping.MustNew(app, plat, ivs) // copies; scratch can be released
		res := Result{Mapping: m, Metrics: ev.Metrics(m)}
		sc.Ivs, sc.Trial = cur[:0], trial[:0]
		sc.Release()
		return res
	}

	if !leq(curLatency, maxLatency) {
		res := finish(cur)
		return res, &InfeasibleError{
			Heuristic: name, Constraint: "latency",
			Target: maxLatency, Achieved: curLatency, Best: res,
		}
	}
	for {
		bIdx, bestK, bestLeft, bestRight, bestPeriod, bestLat, ok := tryAllSplits(ev, cur, &trial, curPeriod, curLatency, maxLatency, rule)
		if !ok {
			break // split as far as the latency budget allows
		}
		iv := cur[bIdx]
		trial = append(trial[:0], cur[:bIdx]...)
		trial = append(trial,
			mapping.Interval{Start: iv.Start, End: bestK, Proc: bestLeft},
			mapping.Interval{Start: bestK + 1, End: iv.End, Proc: bestRight})
		trial = append(trial, cur[bIdx+1:]...)
		cur, trial = trial, cur
		curPeriod, curLatency = bestPeriod, bestLat
	}
	return finish(cur), nil
}

// tryAllSplits enumerates 2-way splits of the bottleneck interval with
// every unused processor in either order, scoring each whole trial in the
// reused buffer (*trialBuf, grown in place so its capacity persists
// across calls), and returns the winning split parameters, or ok=false
// when no trial is admissible. Admissible means: the trial period
// strictly improves on curPeriod and the trial latency respects
// maxLatency (+Inf disables the cap — the SplitFullyHet configuration,
// whose decisions this generalisation reproduces bit for bit). The mono
// rule picks the smallest trial period (ties: smallest latency); the bi
// rule picks the smallest whole-mapping Δlatency/Δperiod ratio relative
// to (curPeriod, curLatency) (ties: smallest period).
func tryAllSplits(ev *mapping.Evaluator, cur []mapping.Interval, trialBuf *[]mapping.Interval, curPeriod, curLatency, maxLatency float64, rule selectRule) (bIdx, bestK, bestLeft, bestRight int, bestPeriod, bestLat float64, ok bool) {
	plat := ev.Platform()

	// Identify the bottleneck interval under the full heterogeneous
	// cost model.
	bCycle := math.Inf(-1)
	for j, iv := range cur {
		prev, next := 0, 0
		if j > 0 {
			prev = cur[j-1].Proc
		}
		if j < len(cur)-1 {
			next = cur[j+1].Proc
		}
		in, comp, out := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, next)
		if c := in + comp + out; c > bCycle {
			bIdx, bCycle = j, c
		}
	}
	iv := cur[bIdx]
	if iv.Start == iv.End {
		return 0, 0, 0, 0, 0, 0, false
	}

	bestPeriod = math.Inf(1)
	bestLat = math.Inf(1)
	bestRatio := math.Inf(1)
	for u := 1; u <= plat.Processors(); u++ {
		if usedIn(cur, u) {
			continue
		}
		for k := iv.Start; k < iv.End; k++ {
			for _, order := range [2][2]int{{iv.Proc, u}, {u, iv.Proc}} {
				trial := append((*trialBuf)[:0], cur[:bIdx]...)
				trial = append(trial,
					mapping.Interval{Start: iv.Start, End: k, Proc: order[0]},
					mapping.Interval{Start: k + 1, End: iv.End, Proc: order[1]})
				trial = append(trial, cur[bIdx+1:]...)
				*trialBuf = trial
				p := ev.PeriodOf(trial)
				if !lt(p, curPeriod) {
					continue
				}
				l := ev.LatencyOf(trial)
				if !leq(l, maxLatency) {
					continue
				}
				take := false
				if rule == selectBi {
					// Δperiod = curPeriod - p > 0 is guaranteed by the
					// strict-improvement gate above.
					r := (l - curLatency) / (curPeriod - p)
					take = r < bestRatio-relEps || (r < bestRatio+relEps && p < bestPeriod)
					if take {
						bestRatio = r
					}
				} else {
					take = p < bestPeriod-relEps || (p < bestPeriod+relEps && l < bestLat)
				}
				if take {
					bestK, bestLeft, bestRight = k, order[0], order[1]
					bestPeriod, bestLat, ok = p, l, true
				}
			}
		}
	}
	return bIdx, bestK, bestLeft, bestRight, bestPeriod, bestLat, ok
}

// usedIn reports whether processor u executes one of the intervals. The
// list is at most p entries long, so the linear scan beats any
// heap-allocated set.
func usedIn(ivs []mapping.Interval, u int) bool {
	for _, iv := range ivs {
		if iv.Proc == u {
			return true
		}
	}
	return false
}

// MinAchievablePeriodFullyHet is the SplitFullyHet analogue of
// MinAchievablePeriod: the smallest period the heterogeneous splitter can
// reach on this instance. A non-InfeasibleError failure is propagated
// instead of panicked.
func MinAchievablePeriodFullyHet(ev *mapping.Evaluator) (float64, error) {
	res, err := SplitFullyHet(ev, 0)
	if err == nil {
		return res.Metrics.Period, nil
	}
	var inf *InfeasibleError
	if errors.As(err, &inf) {
		return inf.Best.Metrics.Period, nil
	}
	return 0, err
}

// ------------------------------------------------- fullhet portfolio --

// FullHetSplit adapts SplitFullyHet to the PeriodConstrained interface so
// the portfolio and sweep layers can race it. The F-prefixed identifiers
// mark the fully-heterogeneous lane, mirroring the X prefix of the
// latency-constrained 3-Exploration extensions.
type FullHetSplit struct{}

// Name implements PeriodConstrained.
func (FullHetSplit) Name() string { return "Split fully-het" }

// ID implements PeriodConstrained.
func (FullHetSplit) ID() string { return "F1" }

// Supports implements PeriodConstrained: the fullhet splitter prices
// per-link bandwidths, so every platform kind is fair game.
func (FullHetSplit) Supports(*platform.Platform) bool { return true }

// MinimizeLatency implements PeriodConstrained.
func (FullHetSplit) MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return SplitFullyHet(ev, maxPeriod)
}

// FullHetSplitL is the latency-constrained fullhet splitter with the
// mono-criterion rule — the free-processor-choice H5 analogue.
type FullHetSplitL struct{}

// Name implements LatencyConstrained.
func (FullHetSplitL) Name() string { return "Sp mono fully-het, L fix" }

// ID implements LatencyConstrained.
func (FullHetSplitL) ID() string { return "F5" }

// Supports implements LatencyConstrained.
func (FullHetSplitL) Supports(*platform.Platform) bool { return true }

// MinimizePeriod implements LatencyConstrained.
func (h FullHetSplitL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return splitFullyHetLatency(ev, maxLatency, selectMono, h.Name())
}

// FullHetSplitBiL is the latency-constrained fullhet splitter with the
// Δlatency/Δperiod rule — the free-processor-choice H6 analogue.
type FullHetSplitBiL struct{}

// Name implements LatencyConstrained.
func (FullHetSplitBiL) Name() string { return "Sp bi fully-het, L fix" }

// ID implements LatencyConstrained.
func (FullHetSplitBiL) ID() string { return "F6" }

// Supports implements LatencyConstrained.
func (FullHetSplitBiL) Supports(*platform.Platform) bool { return true }

// MinimizePeriod implements LatencyConstrained.
func (h FullHetSplitBiL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return splitFullyHetLatency(ev, maxLatency, selectBi, h.Name())
}

// FullHetPeriodHeuristics returns the period-constrained solvers of the
// fully heterogeneous lane, in portfolio order.
func FullHetPeriodHeuristics() []PeriodConstrained {
	return []PeriodConstrained{FullHetSplit{}}
}

// FullHetLatencyHeuristics returns the latency-constrained solvers of the
// fully heterogeneous lane, in portfolio order.
func FullHetLatencyHeuristics() []LatencyConstrained {
	return []LatencyConstrained{FullHetSplitL{}, FullHetSplitBiL{}}
}
