package heuristics

import (
	"math"

	"pipesched/internal/mapping"
)

// SplitFullyHet extends the paper's splitting approach to fully
// heterogeneous platforms (the "future work" of Section 7). On such
// platforms an interval's cycle-time depends on the *links* to its
// neighbours, so two things change relative to the Communication
// Homogeneous engine:
//
//   - every candidate split is evaluated by re-scoring the whole trial
//     mapping (a split changes the neighbouring intervals' communication
//     costs too);
//   - the replacement processor is chosen among all unused processors,
//     not only the next fastest — a slower processor on a fast link can
//     beat a faster one behind a slow link.
//
// The selection rule is mono-criterion (minimise the trial period); the
// acceptance rule (strict period improvement) and the stopping condition
// match the homogeneous engine. It also runs, unchanged, on homogeneous
// platforms, where it degenerates to an H1 variant with free processor
// choice.
func SplitFullyHet(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	plat := ev.Platform()
	app := ev.Pipeline()
	cur := mapping.SingleProcessor(app, plat, plat.Fastest())
	curPeriod := ev.Period(cur)
	used := map[int]bool{plat.Fastest(): true}

	for !leq(curPeriod, maxPeriod) {
		best, bestPeriod, bestLatency := tryAllSplits(ev, cur, curPeriod, used)
		if best == nil {
			res := Result{Mapping: cur, Metrics: ev.Metrics(cur)}
			return res, &InfeasibleError{
				Heuristic: "Split fully-het", Constraint: "period",
				Target: maxPeriod, Achieved: curPeriod, Best: res,
			}
		}
		_ = bestLatency
		cur, curPeriod = best, bestPeriod
		used = map[int]bool{}
		for _, u := range cur.Processors() {
			used[u] = true
		}
	}
	return Result{Mapping: cur, Metrics: ev.Metrics(cur)}, nil
}

// tryAllSplits enumerates 2-way splits of the bottleneck interval with
// every unused processor in either order and returns the trial with the
// smallest period, or nil when no trial strictly improves on curPeriod.
func tryAllSplits(ev *mapping.Evaluator, cur *mapping.Mapping, curPeriod float64, used map[int]bool) (*mapping.Mapping, float64, float64) {
	app, plat := ev.Pipeline(), ev.Platform()
	ivs := cur.Intervals()

	// Identify the bottleneck interval under the full heterogeneous
	// cost model.
	bIdx, bCycle := 0, math.Inf(-1)
	for j, iv := range ivs {
		prev, next := 0, 0
		if j > 0 {
			prev = ivs[j-1].Proc
		}
		if j < len(ivs)-1 {
			next = ivs[j+1].Proc
		}
		in, comp, out := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, next)
		if c := in + comp + out; c > bCycle {
			bIdx, bCycle = j, c
		}
	}
	iv := ivs[bIdx]
	if iv.Start == iv.End {
		return nil, 0, 0
	}

	var best *mapping.Mapping
	bestPeriod := math.Inf(1)
	bestLatency := math.Inf(1)
	consider := func(trial []mapping.Interval) {
		m, err := mapping.New(app, plat, trial)
		if err != nil {
			return
		}
		p := ev.Period(m)
		if !lt(p, curPeriod) {
			return
		}
		l := ev.Latency(m)
		if p < bestPeriod-relEps || (p < bestPeriod+relEps && l < bestLatency) {
			best, bestPeriod, bestLatency = m, p, l
		}
	}
	for u := 1; u <= plat.Processors(); u++ {
		if used[u] {
			continue
		}
		for k := iv.Start; k < iv.End; k++ {
			for _, order := range [2][2]int{{iv.Proc, u}, {u, iv.Proc}} {
				trial := make([]mapping.Interval, 0, len(ivs)+1)
				trial = append(trial, ivs[:bIdx]...)
				trial = append(trial,
					mapping.Interval{Start: iv.Start, End: k, Proc: order[0]},
					mapping.Interval{Start: k + 1, End: iv.End, Proc: order[1]})
				trial = append(trial, ivs[bIdx+1:]...)
				consider(trial)
			}
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	return best, bestPeriod, bestLatency
}

// MinAchievablePeriodFullyHet is the SplitFullyHet analogue of
// MinAchievablePeriod: the smallest period the heterogeneous splitter can
// reach on this instance.
func MinAchievablePeriodFullyHet(ev *mapping.Evaluator) float64 {
	res, err := SplitFullyHet(ev, 0)
	if err == nil {
		return res.Metrics.Period
	}
	if e, ok := err.(*InfeasibleError); ok {
		return e.Best.Metrics.Period
	}
	panic("heuristics: unexpected error from SplitFullyHet: " + err.Error())
}
