package heuristics

import (
	"errors"
	"math"
	"sync/atomic"

	"pipesched/internal/mapping"
)

// Mid-race cancellation: when several solvers chase the same bound, the
// slow ones often spend most of their time provably unable to win — a
// 3-Explo trajectory whose latency has already climbed past a finished
// competitor's result can only lose the selection, whatever it does
// next. Each raced solver therefore carries a cheap running bound on its
// final result and polls the race's incumbent between splits, aborting
// with ErrRaceLost the moment the bound proves defeat.
//
// Cancellation must be invisible in results: a solver is aborted only
// when its *final* outcome could not be selected under the portfolio's
// deterministic tie-breaking. Two facts make the bounds sound:
//
//   - Latency never decreases along a splitting trajectory. Processors
//     enroll fastest-first, so an accepted split moves work from an
//     enrolled processor onto itself plus strictly-slower free ones and
//     adds non-negative communication terms: dLat ≥ 0. The running
//     latency is thus a lower bound on the final latency.
//
//   - The final period refines the current partition. Splits only ever
//     divide an interval among its own processor and free ones, so every
//     current interval's stages end, finally, on a region of total speed
//     at most s_j + S_free — its contribution to the final period is at
//     least W_j/(s_j + S_free). The max of these is a lower bound on the
//     final period however the trajectory continues.
//
// Aborts additionally require a margin (lt, the engine's strict
// comparator): a solver that would finish *equal* to the incumbent is
// never cancelled, because equality can still win on portfolio order.
// And every abort requires a feasible incumbent: with one in hand the
// race's found flag is true, so the InfeasibleError bookkeeping a
// cancelled solver skips (the "closest" failure) is never read.

// ErrRaceLost reports that a raced solver abandoned its run because its
// running bound proved it could not be selected over the incumbent. The
// portfolio treats such attempts exactly as lost races: excluded from
// selection and from infeasibility reporting.
var ErrRaceLost = errors.New("heuristics: solver abandoned mid-race (bound proves it cannot win)")

// Incumbent publishes the best finished metric of a portfolio race —
// smallest latency for period-constrained races, smallest period for
// latency-constrained ones. Concurrent solvers lower it with a CAS loop
// and read it with a single atomic load, so polling costs nanoseconds
// and allocates nothing.
type Incumbent struct {
	bits atomic.Uint64 // float64 bits of the best offered value
}

// NewIncumbent returns an empty incumbent (best = +Inf).
func NewIncumbent() *Incumbent {
	in := &Incumbent{}
	in.Reset()
	return in
}

// Reset empties the incumbent (best = +Inf) so races can pool them.
func (in *Incumbent) Reset() {
	in.bits.Store(math.Float64bits(math.Inf(1)))
}

// Offer lowers the incumbent to v if v is smaller.
func (in *Incumbent) Offer(v float64) {
	for {
		old := in.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if in.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Best returns the current incumbent value (+Inf when nothing finished).
func (in *Incumbent) Best() float64 {
	return math.Float64frombits(in.bits.Load())
}

// PeriodRacer is implemented by period-constrained heuristics that can
// poll a race incumbent (carrying the best finished latency) and abort
// mid-run with ErrRaceLost once they provably cannot win.
type PeriodRacer interface {
	MinimizeLatencyRaced(ev *mapping.Evaluator, maxPeriod float64, inc *Incumbent) (Result, error)
}

// LatencyRacer is the latency-constrained twin: the incumbent carries
// the best finished period.
type LatencyRacer interface {
	MinimizePeriodRaced(ev *mapping.Evaluator, maxLatency float64, inc *Incumbent) (Result, error)
}

// predictMode selects what an infeasibility prediction does: nothing,
// abort the whole solve as race-lost (requires a feasible incumbent), or
// abort the current trial as a plain failure (H4's bisection trials,
// where the early failure is outcome-identical and needs no incumbent).
type predictMode uint8

const (
	predictOff predictMode = iota
	predictLost
	predictFail
)

// raceWatch is the engine's cancellation hook set; the zero value (solo
// runs) disables everything.
type raceWatch struct {
	inc      *Incumbent
	watchLat bool // abort when the incumbent beats the running latency
	watchPer bool // abort when the incumbent beats the refinement period bound
	predict  predictMode
	lost     bool // set when an abort counts as a lost race
}

// racePoll is called once per split iteration; it reports whether the
// trajectory should stop. target is splitUntil's period target (≤ 0 when
// the trajectory is not period-seeking). The poll allocates nothing.
func (st *state) racePoll(target float64) bool {
	r := &st.race
	if r.inc == nil && r.predict != predictFail {
		return false
	}
	best := math.Inf(1)
	if r.inc != nil {
		best = r.inc.Best()
	}
	hasInc := !math.IsInf(best, 1)
	if r.watchLat && lt(best, st.lat) {
		r.lost = true
		return true
	}
	needPredict := target > 0 &&
		(r.predict == predictFail || (r.predict == predictLost && hasInc))
	needPeriod := r.watchPer && hasInc
	if !needPredict && !needPeriod {
		return false
	}
	bound := st.refinementPeriodBound()
	if needPredict && lt(target, bound) {
		if r.predict == predictLost {
			r.lost = true
		}
		return true
	}
	if needPeriod && lt(best, bound) {
		r.lost = true
		return true
	}
	return false
}

// refinementPeriodBound returns a lower bound on the final period of any
// continuation of the current trajectory: each interval's stages finish
// on its processor plus a subset of the currently-free ones (total speed
// ≤ s_j + S_free), and communication terms only add, so its region's
// worst cycle is at least W_j/(s_j + S_free).
func (st *state) refinementPeriodBound() float64 {
	plat := st.ev.Platform()
	freeSpeed := 0.0
	for _, p := range st.free[st.freeOff:] {
		freeSpeed += plat.Speed(p)
	}
	app := st.ev.Pipeline()
	bound := 0.0
	for _, iv := range st.ivs {
		if b := app.IntervalWork(iv.Start, iv.End) / (plat.Speed(iv.Proc) + freeSpeed); b > bound {
			bound = b
		}
	}
	return bound
}

// periodConstrainedSplitRaced is periodConstrainedSplit with the
// cancellation hooks armed: running-latency watch plus infeasibility
// prediction, both gated on a feasible incumbent.
func periodConstrainedSplitRaced(ev *mapping.Evaluator, maxPeriod float64, opt splitOptions, name string, inc *Incumbent) (Result, error) {
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	st.race = raceWatch{inc: inc, watchLat: true, predict: predictLost}
	ok := st.splitUntil(maxPeriod, opt)
	if st.race.lost {
		return Result{}, ErrRaceLost
	}
	res := st.result()
	if !ok {
		return res, &InfeasibleError{Heuristic: name, Constraint: "period", Target: maxPeriod, Achieved: res.Metrics.Period, Best: res}
	}
	return res, nil
}

// MinimizeLatencyRaced implements PeriodRacer for H1.
func (h SpMonoP) MinimizeLatencyRaced(ev *mapping.Evaluator, maxPeriod float64, inc *Incumbent) (Result, error) {
	return periodConstrainedSplitRaced(ev, maxPeriod, splitOptions{rule: selectMono, maxLatency: math.Inf(1)}, h.Name(), inc)
}

// MinimizeLatencyRaced implements PeriodRacer for H2.
func (h ThreeExploMono) MinimizeLatencyRaced(ev *mapping.Evaluator, maxPeriod float64, inc *Incumbent) (Result, error) {
	return periodConstrainedSplitRaced(ev, maxPeriod, splitOptions{rule: selectMono, threeWay: true, maxLatency: math.Inf(1)}, h.Name(), inc)
}

// MinimizeLatencyRaced implements PeriodRacer for H3.
func (h ThreeExploBi) MinimizeLatencyRaced(ev *mapping.Evaluator, maxPeriod float64, inc *Incumbent) (Result, error) {
	return periodConstrainedSplitRaced(ev, maxPeriod, splitOptions{rule: selectBi, threeWay: true, maxLatency: math.Inf(1)}, h.Name(), inc)
}

// MinimizeLatencyRaced implements PeriodRacer for H4. The bisection
// cannot use the latency watch — its final latency comes from a later,
// cheaper-capped trial, so the running latency of one trial bounds
// nothing about the whole solve. Instead the first (uncapped) trial arms
// the infeasibility prediction: when the refinement bound proves the
// period target unreachable and a feasible incumbent exists, the whole
// solve is a lost race. Later bisection trials arm predictFail — a trial
// the bound condemns would have ended infeasible anyway, so failing it
// early steers the bisection identically while skipping its tail.
func (h SpBiP) MinimizeLatencyRaced(ev *mapping.Evaluator, maxPeriod float64, inc *Incumbent) (Result, error) {
	iters := h.Iterations
	if iters <= 0 {
		iters = DefaultBinaryIters
	}
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	trial := func(latCap float64) (mapping.Metrics, bool) {
		st.reset()
		ok := st.splitUntil(maxPeriod, splitOptions{rule: selectBi, maxLatency: latCap})
		return mapping.Metrics{Period: st.period(), Latency: st.latency()}, ok
	}
	st.race = raceWatch{inc: inc, predict: predictLost}
	best, ok := trial(math.Inf(1))
	if st.race.lost {
		return Result{}, ErrRaceLost
	}
	if !ok {
		res := st.result()
		return res, &InfeasibleError{Heuristic: h.Name(), Constraint: "period", Target: maxPeriod, Achieved: res.Metrics.Period, Best: res}
	}
	st.race = raceWatch{predict: predictFail}
	bestCap := math.Inf(1)
	lo := ev.OptimalLatencyValue()
	hi := best.Latency
	for i := 0; i < iters && hi-lo > relEps*(1+hi); i++ {
		mid := (lo + hi) / 2
		if met, ok := trial(mid); ok {
			if met.Latency < best.Latency {
				best, bestCap = met, mid
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	trial(bestCap)
	return st.result(), nil
}

// latencyConstrainedRaced arms the refinement-bound watch: the running
// period itself only falls along a trajectory, but the refinement bound
// is a floor on wherever it can end.
func latencyConstrainedRaced(ev *mapping.Evaluator, maxLatency float64, opt splitOptions, name string, inc *Incumbent) (Result, error) {
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	if !leq(st.latency(), maxLatency) {
		res := st.result()
		return res, &InfeasibleError{Heuristic: name, Constraint: "latency", Target: maxLatency, Achieved: res.Metrics.Latency, Best: res}
	}
	st.race = raceWatch{inc: inc, watchPer: true}
	st.splitUntil(0, opt)
	if st.race.lost {
		return Result{}, ErrRaceLost
	}
	return st.result(), nil
}

// MinimizePeriodRaced implements LatencyRacer for H5.
func (h SpMonoL) MinimizePeriodRaced(ev *mapping.Evaluator, maxLatency float64, inc *Incumbent) (Result, error) {
	return latencyConstrainedRaced(ev, maxLatency, splitOptions{rule: selectMono, maxLatency: maxLatency}, h.Name(), inc)
}

// MinimizePeriodRaced implements LatencyRacer for H6.
func (h SpBiL) MinimizePeriodRaced(ev *mapping.Evaluator, maxLatency float64, inc *Incumbent) (Result, error) {
	return latencyConstrainedRaced(ev, maxLatency, splitOptions{rule: selectBi, maxLatency: maxLatency}, h.Name(), inc)
}
