package heuristics

import (
	"errors"
	"math"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// PeriodConstrained is a heuristic that minimises latency under a maximum
// period (Section 4.1 of the paper).
type PeriodConstrained interface {
	// Name returns the plot label used by the paper, e.g. "Sp mono, P fix".
	Name() string
	// ID returns the Table-1 identifier, e.g. "H1".
	ID() string
	// Supports reports whether the heuristic can solve on plat. Calling
	// MinimizeLatency on an unsupported platform returns
	// ErrUnsupportedPlatform (it never panics); Supports lets dispatchers
	// pick a capable solver lane up front.
	Supports(plat *platform.Platform) bool
	// MinimizeLatency returns a mapping whose period is at most
	// maxPeriod with latency as small as the heuristic manages. When the
	// heuristic cannot reach the period bound it returns an
	// *InfeasibleError carrying the best mapping found.
	MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error)
}

// LatencyConstrained is a heuristic that minimises the period under a
// maximum latency (Section 4.2 of the paper).
type LatencyConstrained interface {
	Name() string
	ID() string
	// Supports reports whether the heuristic can solve on plat, exactly
	// as PeriodConstrained.Supports.
	Supports(plat *platform.Platform) bool
	// MinimizePeriod returns a mapping whose latency is at most
	// maxLatency with period as small as the heuristic manages, or an
	// *InfeasibleError when even the latency-optimal mapping exceeds the
	// bound.
	MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error)
}

// ---------------------------------------------------------------- H1 --

// SpMonoP is heuristic H1, "Splitting mono-criterion" with fixed period:
// repeatedly 2-way split the bottleneck interval, handing stages to the
// next fastest unused processor, choosing the cut minimising
// max(period(j), period(j')); stop as soon as the period bound is met.
type SpMonoP struct{ commHomogeneousOnly }

// Name implements PeriodConstrained.
func (SpMonoP) Name() string { return "Sp mono, P fix" }

// ID implements PeriodConstrained.
func (SpMonoP) ID() string { return "H1" }

// MinimizeLatency implements PeriodConstrained.
func (h SpMonoP) MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return periodConstrainedSplit(ev, maxPeriod, splitOptions{rule: selectMono, maxLatency: math.Inf(1)}, h.Name())
}

// ---------------------------------------------------------------- H2 --

// ThreeExploMono is heuristic H2, "3-Exploration mono-criterion": split the
// bottleneck interval into three parts over the bottleneck processor and
// the next two fastest unused processors, trying all cut pairs and part
// permutations, and keep the candidate minimising the worst of the three
// new cycle-times.
type ThreeExploMono struct{ commHomogeneousOnly }

// Name implements PeriodConstrained.
func (ThreeExploMono) Name() string { return "3-Explo mono" }

// ID implements PeriodConstrained.
func (ThreeExploMono) ID() string { return "H2" }

// MinimizeLatency implements PeriodConstrained.
func (h ThreeExploMono) MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return periodConstrainedSplit(ev, maxPeriod, splitOptions{rule: selectMono, threeWay: true, maxLatency: math.Inf(1)}, h.Name())
}

// ---------------------------------------------------------------- H3 --

// ThreeExploBi is heuristic H3, "3-Exploration bi-criteria": same
// exploration as ThreeExploMono but the retained candidate minimises
// max_{i∈{j,j′,j″}} Δlatency/Δperiod(i), trading period improvement
// against latency degradation.
type ThreeExploBi struct{ commHomogeneousOnly }

// Name implements PeriodConstrained.
func (ThreeExploBi) Name() string { return "3-Explo bi" }

// ID implements PeriodConstrained.
func (ThreeExploBi) ID() string { return "H3" }

// MinimizeLatency implements PeriodConstrained.
func (h ThreeExploBi) MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	return periodConstrainedSplit(ev, maxPeriod, splitOptions{rule: selectBi, threeWay: true, maxLatency: math.Inf(1)}, h.Name())
}

// periodConstrainedSplit runs one pooled splitting trajectory towards the
// period bound (the H1–H3 shape).
func periodConstrainedSplit(ev *mapping.Evaluator, maxPeriod float64, opt splitOptions, name string) (Result, error) {
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	ok := st.splitUntil(maxPeriod, opt)
	res := st.result()
	if !ok {
		return res, &InfeasibleError{Heuristic: name, Constraint: "period", Target: maxPeriod, Achieved: res.Metrics.Period, Best: res}
	}
	return res, nil
}

// ---------------------------------------------------------------- H4 --

// SpBiP is heuristic H4, "Splitting bi-criteria" with fixed period: a
// binary search over the authorized latency. Each trial runs the
// ratio-guided 2-way splitter under a latency cap and checks whether the
// period bound is reached; the search shrinks the cap while trials stay
// feasible, minimising the final latency.
type SpBiP struct {
	commHomogeneousOnly
	// Iterations bounds the binary search; 0 means DefaultBinaryIters.
	Iterations int
}

// DefaultBinaryIters is the default number of bisection steps of SpBiP;
// it locates the latency cap within a 2^-30 fraction of the bracket.
const DefaultBinaryIters = 30

// Name implements PeriodConstrained.
func (SpBiP) Name() string { return "Sp bi, P fix" }

// ID implements PeriodConstrained.
func (SpBiP) ID() string { return "H4" }

// MinimizeLatency implements PeriodConstrained.
func (h SpBiP) MinimizeLatency(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	iters := h.Iterations
	if iters <= 0 {
		iters = DefaultBinaryIters
	}
	// One pooled engine serves every bisection trial: each trial rewinds
	// it in place, and only the winning cap's state is materialised — a
	// full binary search allocates once, for the returned Mapping.
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	trial := func(latCap float64) (mapping.Metrics, bool) {
		st.reset()
		ok := st.splitUntil(maxPeriod, splitOptions{rule: selectBi, maxLatency: latCap})
		return mapping.Metrics{Period: st.period(), Latency: st.latency()}, ok
	}
	// Unlimited cap first: if even that fails, the heuristic fails.
	best, ok := trial(math.Inf(1))
	if !ok {
		res := st.result()
		return res, &InfeasibleError{Heuristic: h.Name(), Constraint: "period", Target: maxPeriod, Achieved: res.Metrics.Period, Best: res}
	}
	bestCap := math.Inf(1)
	lo := ev.OptimalLatencyValue() // latency lower bound (Lemma 1)
	hi := best.Latency
	for i := 0; i < iters && hi-lo > relEps*(1+hi); i++ {
		mid := (lo + hi) / 2
		if met, ok := trial(mid); ok {
			if met.Latency < best.Latency {
				best, bestCap = met, mid
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	// Rewind to the winning cap (trials are deterministic) and
	// materialise that state once.
	trial(bestCap)
	return st.result(), nil
}

// ---------------------------------------------------------------- H5 --

// SpMonoL is heuristic H5, "Splitting mono-criterion" with fixed latency:
// the SpMonoP splitter with a different break condition — keep splitting
// (reducing the period) as long as the latency bound is respected.
type SpMonoL struct{ commHomogeneousOnly }

// Name implements LatencyConstrained.
func (SpMonoL) Name() string { return "Sp mono, L fix" }

// ID implements LatencyConstrained.
func (SpMonoL) ID() string { return "H5" }

// MinimizePeriod implements LatencyConstrained.
func (h SpMonoL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return latencyConstrainedSplit(ev, maxLatency, selectMono, h.Name())
}

// ---------------------------------------------------------------- H6 --

// SpBiL is heuristic H6, "Splitting bi-criteria" with fixed latency: like
// SpMonoL but each step picks the split minimising
// max_{i∈{j,j′}} Δlatency/Δperiod(i).
type SpBiL struct{ commHomogeneousOnly }

// Name implements LatencyConstrained.
func (SpBiL) Name() string { return "Sp bi, L fix" }

// ID implements LatencyConstrained.
func (SpBiL) ID() string { return "H6" }

// MinimizePeriod implements LatencyConstrained.
func (h SpBiL) MinimizePeriod(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	return latencyConstrainedSplit(ev, maxLatency, selectBi, h.Name())
}

func latencyConstrainedSplit(ev *mapping.Evaluator, maxLatency float64, rule selectRule, name string) (Result, error) {
	return latencyConstrained(ev, maxLatency, splitOptions{rule: rule, maxLatency: maxLatency}, name)
}

// latencyConstrained is the shared H5/H6 (and X7/X8) runner: start from
// the latency optimum, split as far as the budget allows, on one pooled
// engine.
func latencyConstrained(ev *mapping.Evaluator, maxLatency float64, opt splitOptions, name string) (Result, error) {
	st, err := acquireState(ev)
	if err != nil {
		return Result{}, err
	}
	defer st.release()
	if !leq(st.latency(), maxLatency) {
		res := st.result()
		return res, &InfeasibleError{Heuristic: name, Constraint: "latency", Target: maxLatency, Achieved: res.Metrics.Latency, Best: res}
	}
	st.splitUntil(0, opt) // split as far as the latency budget allows
	return st.result(), nil
}

// ---------------------------------------------------------- registry --

// PeriodHeuristics returns the four period-constrained heuristics in the
// paper's order (H1–H4).
func PeriodHeuristics() []PeriodConstrained {
	return []PeriodConstrained{SpMonoP{}, ThreeExploMono{}, ThreeExploBi{}, SpBiP{}}
}

// LatencyHeuristics returns the two latency-constrained heuristics (H5, H6).
func LatencyHeuristics() []LatencyConstrained {
	return []LatencyConstrained{SpMonoL{}, SpBiL{}}
}

// MinAchievablePeriod runs h with an unreachable period bound (0) and
// returns the smallest period its splitting trajectory reaches. Because
// each accepted split strictly reduces the bottleneck cycle-time, this
// value is exactly the failure threshold of h on this instance: the
// heuristic succeeds for every target ≥ it and fails below it. A
// non-InfeasibleError failure (the heuristic does not support the
// platform kind) is propagated instead of panicked.
func MinAchievablePeriod(ev *mapping.Evaluator, h PeriodConstrained) (float64, error) {
	res, err := h.MinimizeLatency(ev, 0)
	if err == nil {
		// A zero-period success is only possible on degenerate
		// instances (it cannot happen with positive stage weights).
		return res.Metrics.Period, nil
	}
	var inf *InfeasibleError
	if errors.As(err, &inf) {
		return inf.Best.Metrics.Period, nil
	}
	return 0, err
}

// LatencyFailureThreshold returns the failure threshold of the
// latency-constrained heuristics: they fail exactly when the bound is
// below the optimal latency (Lemma 1), so the threshold is the same for H5
// and H6 — the paper's Table 1 observes this equality empirically.
func LatencyFailureThreshold(ev *mapping.Evaluator) float64 {
	_, l := ev.OptimalLatency()
	return l
}
