package heuristics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func randHetEvaluator(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 2 + r.Intn(maxP-1) // fully heterogeneous platforms need ≥ 2 processors
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	links := make([][]float64, p)
	for u := range links {
		links[u] = make([]float64, p)
	}
	for u := 0; u < p; u++ {
		for v := u + 1; v < p; v++ {
			b := float64(1 + r.Intn(20))
			links[u][v], links[v][u] = b, b
		}
	}
	plat, err := platform.NewFullyHeterogeneous(speeds, links)
	if err != nil {
		panic(err)
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), plat)
}

func TestSplitFullyHetRespectsBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randHetEvaluator(r, 8, 5)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		bound := p0 * (0.3 + 0.7*r.Float64())
		res, err := SplitFullyHet(ev, bound)
		if err != nil {
			var inf *InfeasibleError
			if e, ok := err.(*InfeasibleError); ok {
				inf = e
			} else {
				return false
			}
			return inf.Best.Metrics.Period > bound*(1-1e-9)
		}
		if res.Metrics.Period > bound*(1+1e-6) {
			return false
		}
		// Metrics match a re-evaluation.
		return math.Abs(ev.Period(res.Mapping)-res.Metrics.Period) < 1e-9*(1+res.Metrics.Period)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitFullyHetOnHomogeneousPlatform(t *testing.T) {
	// On a homogeneous platform the heterogeneous splitter explores a
	// superset of H1's candidates at each step, but both are greedy, so
	// neither final period provably dominates the other per instance.
	// Assert the sound per-instance envelope (single-processor period
	// above, nothing below zero) and that on aggregate the free
	// processor choice does not lose to H1.
	r := rand.New(rand.NewSource(1))
	var sumH1, sumHet float64
	for trial := 0; trial < 60; trial++ {
		ev := randEvaluator(r, 10, 6)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		h1, err1 := MinAchievablePeriod(ev, SpMonoP{})
		het, err2 := MinAchievablePeriodFullyHet(ev)
		if err1 != nil || err2 != nil {
			t.Fatalf("thresholds failed: %v / %v", err1, err2)
		}
		if het <= 0 || het > p0*(1+1e-9) {
			t.Fatalf("trial %d: het min period %g outside (0, %g]", trial, het, p0)
		}
		sumH1 += h1
		sumHet += het
	}
	if sumHet > sumH1*1.02 {
		t.Errorf("free processor choice lost to H1 on aggregate: %g vs %g", sumHet/60, sumH1/60)
	}
}

// A fast processor behind a slow link must lose to a slightly slower
// processor on a fast link when communications dominate — the scenario
// motivating the free processor choice of the heterogeneous splitter.
//
// Setup: P1 (speed 10, fastest) initially holds both stages; the stage
// boundary carries δ = 100. P2 (speed 9) sits behind a bandwidth-1 link
// from P1 (transfer cost 100); P3 (speed 8) is on a bandwidth-100 link
// (transfer cost 1). Only splitting toward P3 can reach period ≤ 7:
// cycles become P1: 0 + 50/10 + 100/100 = 6 and P3: 1 + 50/8 + 0 = 7.25…
// — still above 7 on the second interval, so put the lighter... both
// stages weigh 50; the P3 variant yields period 7.25, the bound below
// must account for it.
func TestSplitFullyHetPrefersFastLinks(t *testing.T) {
	app := pipeline.MustNew([]float64{50, 50}, []float64{0, 100, 0})
	links := [][]float64{
		{0, 1, 100},
		{1, 0, 1},
		{100, 1, 0},
	}
	plat, err := platform.NewFullyHeterogeneous([]float64{10, 9, 8}, links)
	if err != nil {
		t.Fatal(err)
	}
	ev := mapping.NewEvaluator(app, plat)
	// Single-processor period on P1 is 100/10 = 10; the P3 split reaches
	// max(6, 7.25) = 7.25; the P2 split costs a 100-unit transfer and is
	// hopeless. Ask for 7.5: only the P3 split qualifies.
	res, err := SplitFullyHet(ev, 7.5)
	if err != nil {
		t.Fatalf("expected feasible: %v", err)
	}
	usedP2, usedP3 := false, false
	for _, u := range res.Mapping.Processors() {
		switch u {
		case 2:
			usedP2 = true
		case 3:
			usedP3 = true
		}
	}
	if usedP2 {
		t.Errorf("splitter chose the fast processor behind the slow link: %v", res.Mapping)
	}
	if !usedP3 {
		t.Errorf("splitter did not use the fast-link processor: %v", res.Mapping)
	}
}

func TestSplitFullyHetTrivialBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ev := randHetEvaluator(r, 6, 4)
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	p0 := ev.Period(single)
	res, err := SplitFullyHet(ev, p0*1.01)
	if err != nil {
		t.Fatalf("trivial bound failed: %v", err)
	}
	if res.Mapping.Size() != 1 {
		t.Errorf("trivial bound split anyway: %v", res.Mapping)
	}
}

func TestMinAchievablePeriodFullyHetConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randHetEvaluator(r, 8, 5)
		p0, err0 := MinAchievablePeriodFullyHet(ev)
		if err0 != nil {
			return false
		}
		if _, err := SplitFullyHet(ev, p0*(1+1e-6)); err != nil {
			return false
		}
		_, err := SplitFullyHet(ev, p0*0.98-1e-6)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
