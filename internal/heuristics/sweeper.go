package heuristics

// Warm-started sweep support. A Pareto sweep runs the same heuristic at
// many adjacent bounds; rerunning from scratch at every grid point
// recomputes a splitting prefix that the previous point already built.
// The sweepers below keep one pooled engine alive across the grid and
// exploit two structural facts of the splitting engine:
//
//   - A period-constrained trajectory does not depend on its target: the
//     bound only decides when to STOP splitting, so a non-increasing
//     bound sequence is served by resuming one trajectory (H1–H3).
//   - A latency-constrained run depends on its budget only through the
//     candidates the cap rejected. The engine records the smallest total
//     latency among cap-rejected candidates (state.minRejectedLat); any
//     larger budget below that threshold admits exactly the same
//     candidate sets at every step, so the result provably repeats and
//     the run is skipped outright (H5/H6 and the X7/X8 extensions).
//
// Results are bit-identical to fresh per-bound runs — the sweep
// equivalence tests and portfolio.ParetoSweep's frontier determinism
// depend on it.

import (
	"errors"
	"math"

	"pipesched/internal/mapping"
)

// PeriodSweeper solves one period-constrained heuristic across a
// non-increasing sequence of period bounds. For the pure splitting
// heuristics (H1–H3) it extends a single trajectory; for SpBiP (whose
// bisection re-runs the engine per bound) it reuses the pooled engine
// and caches the infeasibility threshold — once a bound fails, every
// tighter bound fails with the identical payload. Unknown
// PeriodConstrained implementations fall back to fresh solves.
type PeriodSweeper struct {
	ev   *mapping.Evaluator
	h    PeriodConstrained
	opt  splitOptions
	traj bool

	st        *state
	stuck     bool   // no admissible split remains
	dirty     bool   // trajectory advanced since last materialisation
	have      bool   // last is valid
	last      Result // last materialised feasible result
	final     Result // materialised stuck state (error payload)
	haveFinal bool
	prev      float64 // previous bound, for the monotone contract

	fail *InfeasibleError // SpBiP failure cache
}

// NewPeriodSweeper binds a sweeper to one evaluator and heuristic. Call
// Close when the sweep is done to return the pooled engine. A heuristic
// that does not support the evaluator's platform takes the fresh-solve
// fallback, whose per-bound calls return ErrUnsupportedPlatform.
func NewPeriodSweeper(ev *mapping.Evaluator, h PeriodConstrained) *PeriodSweeper {
	s := &PeriodSweeper{ev: ev, h: h, prev: math.Inf(1)}
	if !h.Supports(ev.Platform()) {
		return s
	}
	switch h.(type) {
	case SpMonoP:
		s.opt, s.traj = splitOptions{rule: selectMono, maxLatency: math.Inf(1)}, true
	case ThreeExploMono:
		s.opt, s.traj = splitOptions{rule: selectMono, threeWay: true, maxLatency: math.Inf(1)}, true
	case ThreeExploBi:
		s.opt, s.traj = splitOptions{rule: selectBi, threeWay: true, maxLatency: math.Inf(1)}, true
	}
	if s.traj {
		st, err := acquireState(ev)
		if err != nil {
			// Supports and the engine gate agree for the known types, so
			// this cannot fire; degrading to fresh solves keeps it safe.
			s.traj = false
			return s
		}
		s.st = st
	}
	return s
}

// Solve returns exactly what h.MinimizeLatency(ev, bound) would — same
// result, same error payload — while reusing work from earlier calls.
// Bounds should be non-increasing; a larger bound is answered with a
// fresh solve (correct, just not warm).
func (s *PeriodSweeper) Solve(bound float64) (Result, error) {
	if bound > s.prev {
		return s.h.MinimizeLatency(s.ev, bound)
	}
	s.prev = bound
	if !s.traj {
		if s.fail != nil {
			// Splitting failure thresholds are monotone: the trajectory
			// that exhausted above this bound exhausts below it too, with
			// the same best state; only the reported target changes.
			e := *s.fail
			e.Target = bound
			return e.Best, &e
		}
		res, err := s.h.MinimizeLatency(s.ev, bound)
		if err != nil {
			var inf *InfeasibleError
			if _, isH4 := s.h.(SpBiP); isH4 && errors.As(err, &inf) {
				s.fail = inf
			}
		}
		return res, err
	}
	st := s.st
	for !s.stuck && !leq(st.period(), bound) {
		idx := st.bottleneck()
		c, ok := st.bestSplit(idx, s.opt)
		if !ok {
			s.stuck = true
			break
		}
		st.apply(idx, &c)
		s.dirty = true
	}
	if leq(st.period(), bound) {
		if s.dirty || !s.have {
			s.last = st.result()
			s.have, s.dirty = true, false
		}
		return s.last, nil
	}
	if !s.haveFinal {
		s.final = st.result()
		s.haveFinal = true
	}
	return s.final, &InfeasibleError{Heuristic: s.h.Name(), Constraint: "period", Target: bound, Achieved: s.final.Metrics.Period, Best: s.final}
}

// Close releases the pooled engine. The sweeper must not be used after.
func (s *PeriodSweeper) Close() {
	if s.st != nil {
		s.st.release()
		s.st = nil
	}
}

// LatencySweeper solves one latency-constrained heuristic across a
// non-decreasing sequence of latency budgets on one pooled engine,
// skipping reruns whose result provably repeats (no candidate the
// previous run's cap rejected becomes admissible under the new budget).
// Unknown LatencyConstrained implementations fall back to fresh solves.
type LatencySweeper struct {
	ev    *mapping.Evaluator
	h     LatencyConstrained
	opt   splitOptions // maxLatency set per run
	known bool

	st       *state
	initLat  float64 // latency of the initial mapping (= Lemma-1 optimum)
	initRes  Result  // materialised initial state (infeasibility payload)
	haveInit bool

	have   bool
	prev   float64
	minRej float64 // state.minRejectedLat of the cached run
	last   Result
}

// NewLatencySweeper binds a sweeper to one evaluator and heuristic. Call
// Close when the sweep is done. A heuristic that does not support the
// evaluator's platform takes the fresh-solve fallback, exactly as in
// NewPeriodSweeper.
func NewLatencySweeper(ev *mapping.Evaluator, h LatencyConstrained) *LatencySweeper {
	s := &LatencySweeper{ev: ev, h: h, prev: math.Inf(-1)}
	if !h.Supports(ev.Platform()) {
		return s
	}
	switch h.(type) {
	case SpMonoL:
		s.opt, s.known = splitOptions{rule: selectMono}, true
	case SpBiL:
		s.opt, s.known = splitOptions{rule: selectBi}, true
	case ThreeExploMonoL:
		s.opt, s.known = splitOptions{rule: selectMono, threeWay: true}, true
	case ThreeExploBiL:
		s.opt, s.known = splitOptions{rule: selectBi, threeWay: true}, true
	}
	if s.known {
		st, err := acquireState(ev)
		if err != nil {
			s.known = false
			return s
		}
		s.st = st
		s.initLat = s.st.latency()
	}
	return s
}

// Solve returns exactly what h.MinimizePeriod(ev, budget) would. Budgets
// should be non-decreasing; a smaller budget is answered with a fresh
// solve.
func (s *LatencySweeper) Solve(budget float64) (Result, error) {
	if !s.known || budget < s.prev {
		return s.h.MinimizePeriod(s.ev, budget)
	}
	s.prev = budget
	if !leq(s.initLat, budget) {
		// Below the Lemma-1 optimum even the initial mapping busts the
		// budget; the payload is the initial state, whatever the budget.
		if !s.haveInit {
			s.st.reset()
			s.initRes = s.st.result()
			s.haveInit = true
			s.have = false // st no longer holds the cached run's state
		}
		return s.initRes, &InfeasibleError{Heuristic: s.h.Name(), Constraint: "latency", Target: budget, Achieved: s.initRes.Metrics.Latency, Best: s.initRes}
	}
	if s.have && !leq(s.minRej, budget) {
		// Every candidate the cached run's cap rejected still exceeds
		// this budget, so a fresh run would replay the identical
		// decision sequence: the result repeats without re-enumerating.
		return s.last, nil
	}
	opt := s.opt
	opt.maxLatency = budget
	s.st.reset()
	s.st.splitUntil(0, opt)
	s.minRej = s.st.minRejectedLat
	s.last = s.st.result()
	s.have = true
	return s.last, nil
}

// Close releases the pooled engine. The sweeper must not be used after.
func (s *LatencySweeper) Close() {
	if s.st != nil {
		s.st.release()
		s.st = nil
	}
}
