package platform

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	p, err := New([]float64{3, 1, 2}, 10)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.Processors() != 3 {
		t.Errorf("Processors() = %d, want 3", p.Processors())
	}
	if p.Kind() != CommHomogeneous {
		t.Errorf("Kind() = %v, want CommHomogeneous", p.Kind())
	}
	if p.Bandwidth() != 10 {
		t.Errorf("Bandwidth() = %g, want 10", p.Bandwidth())
	}
	for u, want := range map[int]float64{1: 3, 2: 1, 3: 2} {
		if got := p.Speed(u); got != want {
			t.Errorf("Speed(%d) = %g, want %g", u, got, want)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		speeds []float64
		b      float64
	}{
		{"no processor", nil, 1},
		{"zero speed", []float64{1, 0}, 1},
		{"negative speed", []float64{-2}, 1},
		{"NaN speed", []float64{math.NaN()}, 1},
		{"zero bandwidth", []float64{1}, 0},
		{"negative bandwidth", []float64{1}, -3},
		{"NaN bandwidth", []float64{1}, math.NaN()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.speeds, c.b); err == nil {
				t.Errorf("New(%v, %v) succeeded, want error", c.speeds, c.b)
			}
		})
	}
}

func TestFastestFirstOrder(t *testing.T) {
	p := MustNew([]float64{5, 20, 20, 1, 7}, 10)
	order := p.FastestFirst()
	want := []int{2, 3, 5, 1, 4} // speed 20,20 (tie → lower id first), 7, 5, 1
	if len(order) != len(want) {
		t.Fatalf("FastestFirst() length %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FastestFirst() = %v, want %v", order, want)
		}
	}
	if p.Fastest() != 2 {
		t.Errorf("Fastest() = %d, want 2", p.Fastest())
	}
	if p.MaxSpeed() != 20 {
		t.Errorf("MaxSpeed() = %g, want 20", p.MaxSpeed())
	}
}

func TestFastestFirstIsCopy(t *testing.T) {
	p := MustNew([]float64{1, 2}, 1)
	order := p.FastestFirst()
	order[0] = 99
	if p.Fastest() != 2 {
		t.Error("mutating FastestFirst() result changed the platform")
	}
}

// Property: FastestFirst is always a permutation of 1..p with
// non-increasing speeds.
func TestFastestFirstProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		p := MustNew(speeds, 10)
		order := p.FastestFirst()
		seen := make(map[int]bool, n)
		for i, u := range order {
			if u < 1 || u > n || seen[u] {
				return false
			}
			seen[u] = true
			if i > 0 && p.Speed(order[i-1]) < p.Speed(u) {
				return false
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalSpeed(t *testing.T) {
	p := MustNew([]float64{1, 2, 3.5}, 1)
	if got := p.TotalSpeed(); got != 6.5 {
		t.Errorf("TotalSpeed() = %g, want 6.5", got)
	}
}

func TestLinkBandwidthHomogeneous(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, 7)
	for u := 1; u <= 3; u++ {
		for v := 1; v <= 3; v++ {
			if u == v {
				continue
			}
			if got := p.LinkBandwidth(u, v); got != 7 {
				t.Errorf("LinkBandwidth(%d,%d) = %g, want 7", u, v, got)
			}
		}
	}
}

func TestLinkBandwidthSelfPanics(t *testing.T) {
	p := MustNew([]float64{1, 2}, 1)
	defer func() {
		if recover() == nil {
			t.Error("LinkBandwidth(1,1) did not panic")
		}
	}()
	p.LinkBandwidth(1, 1)
}

func TestBandwidthPanicsOnHeterogeneous(t *testing.T) {
	p, err := NewFullyHeterogeneous([]float64{1, 2}, [][]float64{{0, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("NewFullyHeterogeneous: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Bandwidth() on heterogeneous platform did not panic")
		}
	}()
	p.Bandwidth()
}

func TestNewFullyHeterogeneous(t *testing.T) {
	links := [][]float64{
		{0, 5, 2},
		{5, 0, 8},
		{2, 8, 0},
	}
	p, err := NewFullyHeterogeneous([]float64{1, 2, 3}, links)
	if err != nil {
		t.Fatalf("NewFullyHeterogeneous: %v", err)
	}
	if p.Kind() != FullyHeterogeneous {
		t.Errorf("Kind() = %v", p.Kind())
	}
	if got := p.LinkBandwidth(1, 3); got != 2 {
		t.Errorf("LinkBandwidth(1,3) = %g, want 2", got)
	}
	if got := p.LinkBandwidth(3, 2); got != 8 {
		t.Errorf("LinkBandwidth(3,2) = %g, want 8", got)
	}
	if got := p.MinLinkBandwidth(); got != 2 {
		t.Errorf("MinLinkBandwidth() = %g, want 2", got)
	}
}

func TestNewFullyHeterogeneousRejectsBadMatrices(t *testing.T) {
	cases := []struct {
		name   string
		speeds []float64
		links  [][]float64
	}{
		{"wrong rows", []float64{1, 2}, [][]float64{{0, 1}}},
		{"wrong cols", []float64{1, 2}, [][]float64{{0, 1}, {1}}},
		{"asymmetric", []float64{1, 2}, [][]float64{{0, 1}, {2, 0}}},
		{"zero link", []float64{1, 2}, [][]float64{{0, 0}, {0, 0}}},
		{"negative link", []float64{1, 2}, [][]float64{{0, -1}, {-1, 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewFullyHeterogeneous(c.speeds, c.links); err == nil {
				t.Error("succeeded, want error")
			}
		})
	}
}

func TestHomogenize(t *testing.T) {
	links := [][]float64{
		{0, 5, 2},
		{5, 0, 8},
		{2, 8, 0},
	}
	het, err := NewFullyHeterogeneous([]float64{1, 2, 3}, links)
	if err != nil {
		t.Fatal(err)
	}
	hom := het.Homogenize()
	if hom.Kind() != CommHomogeneous {
		t.Fatalf("Homogenize kind = %v", hom.Kind())
	}
	if hom.Bandwidth() != 2 {
		t.Errorf("Homogenize bandwidth = %g, want slowest link 2", hom.Bandwidth())
	}
	// Homogeneous platforms homogenize to themselves.
	p := MustNew([]float64{1}, 4)
	if p.Homogenize() != p {
		t.Error("Homogenize of homogeneous platform is not identity")
	}
}

func TestJSONRoundTripHomogeneous(t *testing.T) {
	p := MustNew([]float64{4, 2, 9}, 10)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Processors() != 3 || q.Bandwidth() != 10 || q.Speed(3) != 9 {
		t.Errorf("round trip mismatch: %v", &q)
	}
	order := q.FastestFirst()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return q.Speed(order[i]) >= q.Speed(order[j]) }) {
		t.Error("speed order not rebuilt after Unmarshal")
	}
}

func TestJSONRoundTripHeterogeneous(t *testing.T) {
	links := [][]float64{{0, 5}, {5, 0}}
	p, err := NewFullyHeterogeneous([]float64{1, 2}, links)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Kind() != FullyHeterogeneous || q.LinkBandwidth(1, 2) != 5 {
		t.Errorf("round trip mismatch: %v", &q)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var p Platform
	for _, blob := range []string{
		`{"kind":"comm-homogeneous","speeds":[],"bandwidth":1}`,
		`{"kind":"comm-homogeneous","speeds":[1]}`, // zero bandwidth
		`{"kind":"nonsense","speeds":[1],"bandwidth":1}`,
		`{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1]]}`,
	} {
		if err := json.Unmarshal([]byte(blob), &p); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", blob)
		}
	}
}

func TestString(t *testing.T) {
	p := MustNew([]float64{1, 2}, 10)
	s := p.String()
	for _, want := range []string{"comm-homogeneous", "2 processors", "b=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSpeedOutOfRangePanics(t *testing.T) {
	p := MustNew([]float64{1}, 1)
	for _, u := range []int{0, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Speed(%d) did not panic", u)
				}
			}()
			p.Speed(u)
		}()
	}
}

func TestSpeedClasses(t *testing.T) {
	p := MustNew([]float64{5, 20, 20, 1, 7, 5}, 10)
	if got := p.SpeedClasses(); got != 4 {
		t.Fatalf("SpeedClasses() = %d, want 4", got)
	}
	// Classes fastest first: 20 {2,3}, 7 {5}, 5 {1,6}, 1 {4}.
	wantSpeeds := []float64{20, 7, 5, 1}
	wantMembers := [][]int{{2, 3}, {5}, {1, 6}, {4}}
	for k := range wantSpeeds {
		if got := p.ClassSpeed(k); got != wantSpeeds[k] {
			t.Errorf("ClassSpeed(%d) = %g, want %g", k, got, wantSpeeds[k])
		}
		if got := p.ClassSize(k); got != len(wantMembers[k]) {
			t.Errorf("ClassSize(%d) = %d, want %d", k, got, len(wantMembers[k]))
		}
		members := p.ClassMembers(k)
		if !reflect.DeepEqual(members, wantMembers[k]) {
			t.Errorf("ClassMembers(%d) = %v, want %v", k, members, wantMembers[k])
		}
		if got := p.ClassRepresentative(k); got != wantMembers[k][0] {
			t.Errorf("ClassRepresentative(%d) = %d, want %d", k, got, wantMembers[k][0])
		}
		for _, u := range members {
			if got := p.ClassOf(u); got != k {
				t.Errorf("ClassOf(%d) = %d, want %d", u, got, k)
			}
		}
	}
	if got, want := p.ClassStateSpace(), 3*2*3*2; got != want {
		t.Errorf("ClassStateSpace() = %d, want %d", got, want)
	}
}

func TestSpeedClassesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(5)) // few distinct values → classes
		}
		p := MustNew(speeds, 10)
		seen := 0
		product := 1
		for k := 0; k < p.SpeedClasses(); k++ {
			if k > 0 && p.ClassSpeed(k) >= p.ClassSpeed(k-1) {
				return false // classes must be strictly fastest-first
			}
			members := p.ClassMembers(k)
			if len(members) != p.ClassSize(k) {
				return false
			}
			product *= len(members) + 1
			for i, u := range members {
				if i > 0 && members[i-1] >= u {
					return false // increasing ids within a class
				}
				if p.Speed(u) != p.ClassSpeed(k) || p.ClassOf(u) != k {
					return false
				}
				seen++
			}
		}
		return seen == n && product == p.ClassStateSpace()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassStateSpaceSaturates(t *testing.T) {
	// 60 singleton classes would give 2^60 > the cap; the product must
	// saturate, not overflow.
	speeds := make([]float64, 60)
	for i := range speeds {
		speeds[i] = float64(i + 1)
	}
	p := MustNew(speeds, 1)
	if got := p.ClassStateSpace(); got != stateSpaceCap {
		t.Errorf("ClassStateSpace() = %d, want saturation at %d", got, stateSpaceCap)
	}
}

func TestClassAccessorsPanicOutOfRange(t *testing.T) {
	p := MustNew([]float64{1, 2}, 1)
	for name, fn := range map[string]func(){
		"ClassSpeed":          func() { p.ClassSpeed(2) },
		"ClassSize":           func() { p.ClassSize(-1) },
		"ClassMembers":        func() { p.ClassMembers(5) },
		"ClassRepresentative": func() { p.ClassRepresentative(2) },
		"ClassOf":             func() { p.ClassOf(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOrderedProcessorMatchesFastestFirst(t *testing.T) {
	p := MustNew([]float64{1, 7, 3, 9, 5, 7}, 10)
	order := p.FastestFirst()
	for i, want := range order {
		if got := p.OrderedProcessor(i); got != want {
			t.Errorf("OrderedProcessor(%d) = %d, want %d", i, got, want)
		}
	}
	for _, i := range []int{-1, len(order)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OrderedProcessor(%d) did not panic", i)
				}
			}()
			p.OrderedProcessor(i)
		}()
	}
}
