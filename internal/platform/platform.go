// Package platform models the target execution platforms of the paper:
// cliques of p processors P_1..P_p. The paper's main setting is the
// Communication Homogeneous platform (different-speed processors, identical
// link bandwidth b, one-port communication model); the fully heterogeneous
// extension mentioned as future work (per-link bandwidths b_{u,v}) is also
// supported so that the splitting heuristics can be exercised on it.
package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the communication model of a platform.
type Kind int

const (
	// CommHomogeneous: identical links of bandwidth b between any pair
	// (the paper's target).
	CommHomogeneous Kind = iota
	// FullyHeterogeneous: per-link bandwidths b_{u,v} (the paper's
	// future-work extension).
	FullyHeterogeneous
)

func (k Kind) String() string {
	switch k {
	case CommHomogeneous:
		return "comm-homogeneous"
	case FullyHeterogeneous:
		return "fully-heterogeneous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Platform describes p processors fully interconnected as a virtual clique.
// Processors are numbered 1..p as in the paper.
type Platform struct {
	speeds    []float64   // speeds[u] = s_{u+1}
	bandwidth float64     // b, for CommHomogeneous
	links     [][]float64 // links[u][v] = b_{u+1,v+1}, for FullyHeterogeneous
	kind      Kind
	bySpeed   []int // processor ids (1-based) sorted by non-increasing speed

	// Speed classes: processors grouped by equal speed, fastest class
	// first. Interval mappings cost intervals through Speed(u) only, so
	// same-speed processors are interchangeable; the exact solvers exploit
	// this to compress their per-processor state to per-class counts.
	classMembers [][]int // classMembers[k]: ids of class k, increasing
	classOf      []int   // classOf[u-1]: class index of processor u
	stateSpace   int     // ∏_k (|class k|+1), saturated at stateSpaceCap
}

// stateSpaceCap saturates the mixed-radix state-space product so that
// pathological platforms (many large classes) cannot overflow int; any
// value above every practical solver budget is equivalent. It stays
// below 2^31 so the package keeps building on 32-bit architectures.
const stateSpaceCap = 1 << 30

var errNoProcessor = errors.New("platform: at least one processor is required")

// New builds a Communication Homogeneous platform from processor speeds and
// the common link bandwidth b. Speeds are copied.
func New(speeds []float64, bandwidth float64) (*Platform, error) {
	if len(speeds) == 0 {
		return nil, errNoProcessor
	}
	if bandwidth <= 0 || bad(bandwidth) {
		return nil, fmt.Errorf("platform: invalid bandwidth %v (must be finite and > 0)", bandwidth)
	}
	for u, s := range speeds {
		if s <= 0 || bad(s) {
			return nil, fmt.Errorf("platform: processor %d has invalid speed %v (must be finite and > 0)", u+1, s)
		}
	}
	p := &Platform{
		speeds:    append([]float64(nil), speeds...),
		bandwidth: bandwidth,
		kind:      CommHomogeneous,
	}
	p.buildSpeedOrder()
	return p, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(speeds []float64, bandwidth float64) *Platform {
	p, err := New(speeds, bandwidth)
	if err != nil {
		panic(err)
	}
	return p
}

// NewFullyHeterogeneous builds a platform with per-link bandwidths.
// links must be a p×p matrix; links[u][v] is the bandwidth of the
// bidirectional link between P_{u+1} and P_{v+1} and must equal
// links[v][u]. Diagonal entries are ignored (intra-processor communication
// is free) but must be non-negative.
func NewFullyHeterogeneous(speeds []float64, links [][]float64) (*Platform, error) {
	pn := len(speeds)
	if pn == 0 {
		return nil, errNoProcessor
	}
	if pn == 1 {
		return nil, errors.New("platform: a fully heterogeneous platform needs at least 2 processors (no link exists otherwise); use New for a single processor")
	}
	for u, s := range speeds {
		if s <= 0 || bad(s) {
			return nil, fmt.Errorf("platform: processor %d has invalid speed %v", u+1, s)
		}
	}
	if len(links) != pn {
		return nil, fmt.Errorf("platform: link matrix has %d rows, want %d", len(links), pn)
	}
	cp := make([][]float64, pn)
	for u := range links {
		if len(links[u]) != pn {
			return nil, fmt.Errorf("platform: link matrix row %d has %d columns, want %d", u, len(links[u]), pn)
		}
		cp[u] = append([]float64(nil), links[u]...)
	}
	for u := 0; u < pn; u++ {
		for v := u + 1; v < pn; v++ {
			if cp[u][v] != cp[v][u] {
				return nil, fmt.Errorf("platform: asymmetric link %d↔%d (%v vs %v)", u+1, v+1, cp[u][v], cp[v][u])
			}
			if cp[u][v] <= 0 || bad(cp[u][v]) {
				return nil, fmt.Errorf("platform: invalid bandwidth %v on link %d↔%d", cp[u][v], u+1, v+1)
			}
		}
	}
	p := &Platform{
		speeds: append([]float64(nil), speeds...),
		links:  cp,
		kind:   FullyHeterogeneous,
	}
	p.buildSpeedOrder()
	return p, nil
}

func bad(x float64) bool { return x != x || x > 1e300 || x < -1e300 }

func (p *Platform) buildSpeedOrder() {
	p.bySpeed = make([]int, len(p.speeds))
	for i := range p.bySpeed {
		p.bySpeed[i] = i + 1
	}
	sort.SliceStable(p.bySpeed, func(i, j int) bool {
		si, sj := p.speeds[p.bySpeed[i]-1], p.speeds[p.bySpeed[j]-1]
		if si != sj {
			return si > sj
		}
		return p.bySpeed[i] < p.bySpeed[j] // deterministic tie-break by id
	})
	p.buildClasses()
}

// buildClasses groups the speed-sorted processors into equal-speed classes.
// bySpeed is sorted by (speed desc, id asc), so each class's member list
// comes out in increasing id order for free.
func (p *Platform) buildClasses() {
	p.classOf = make([]int, len(p.speeds))
	p.classMembers = p.classMembers[:0]
	for _, u := range p.bySpeed {
		k := len(p.classMembers) - 1
		if k < 0 || p.speeds[u-1] != p.speeds[p.classMembers[k][0]-1] {
			p.classMembers = append(p.classMembers, []int{u})
			k++
		} else {
			p.classMembers[k] = append(p.classMembers[k], u)
		}
		p.classOf[u-1] = k
	}
	p.stateSpace = 1
	for _, members := range p.classMembers {
		p.stateSpace *= len(members) + 1
		if p.stateSpace > stateSpaceCap {
			p.stateSpace = stateSpaceCap
			break
		}
	}
}

// SpeedClasses returns the number of distinct processor speeds.
func (p *Platform) SpeedClasses() int { return len(p.classMembers) }

// ClassOf returns the speed-class index of processor u, in [0..SpeedClasses()).
// Classes are numbered fastest first.
func (p *Platform) ClassOf(u int) int {
	p.check(u)
	return p.classOf[u-1]
}

// ClassSpeed returns the common speed of class k.
func (p *Platform) ClassSpeed(k int) float64 {
	p.checkClass(k)
	return p.speeds[p.classMembers[k][0]-1]
}

// ClassSize returns c_k, the number of processors in class k.
func (p *Platform) ClassSize(k int) int {
	p.checkClass(k)
	return len(p.classMembers[k])
}

// ClassMembers returns the processor ids of class k in increasing order.
// The returned slice is a copy.
func (p *Platform) ClassMembers(k int) []int {
	p.checkClass(k)
	return append([]int(nil), p.classMembers[k]...)
}

// ClassMember returns the i-th processor id of class k (ids increase with
// i). Unlike ClassMembers it does not copy, so callers on allocation-free
// paths can enumerate a class member by member.
func (p *Platform) ClassMember(k, i int) int {
	p.checkClass(k)
	members := p.classMembers[k]
	if i < 0 || i >= len(members) {
		panic(fmt.Sprintf("platform: class %d member %d out of range [0..%d)", k, i, len(members)))
	}
	return members[i]
}

// ClassRepresentative returns the smallest processor id of class k. Any
// cost that depends on processors only through their speed evaluates
// identically on the representative and on every other member.
func (p *Platform) ClassRepresentative(k int) int {
	p.checkClass(k)
	return p.classMembers[k][0]
}

// ClassStateSpace returns ∏_k (c_k+1), the number of per-class usage
// vectors — the state count of the class-compressed exact dynamic program,
// against 2^p for the uncompressed bitmask formulation. The product
// saturates (at 2^30) instead of overflowing on pathological platforms.
func (p *Platform) ClassStateSpace() int { return p.stateSpace }

func (p *Platform) checkClass(k int) {
	if k < 0 || k >= len(p.classMembers) {
		panic(fmt.Sprintf("platform: speed class %d out of range [0..%d)", k, len(p.classMembers)))
	}
}

// Kind reports the communication model of the platform.
func (p *Platform) Kind() Kind { return p.kind }

// Processors returns p, the number of processors.
func (p *Platform) Processors() int { return len(p.speeds) }

// Speed returns s_u, for u in [1..p].
func (p *Platform) Speed(u int) float64 {
	p.check(u)
	return p.speeds[u-1]
}

// Speeds returns a copy of the speed vector (index 0 holds s_1).
func (p *Platform) Speeds() []float64 { return append([]float64(nil), p.speeds...) }

// Bandwidth returns the common link bandwidth b of a Communication
// Homogeneous platform. It panics on fully heterogeneous platforms, where
// no single b exists; use LinkBandwidth instead.
func (p *Platform) Bandwidth() float64 {
	if p.kind != CommHomogeneous {
		panic("platform: Bandwidth() called on a " + p.kind.String() + " platform")
	}
	return p.bandwidth
}

// LinkBandwidth returns the bandwidth b_{u,v} of the link between P_u and
// P_v. On Communication Homogeneous platforms this is b for every pair.
// Intra-processor transfers cost nothing and never traverse a link, so
// u == v panics to keep misuse loud.
func (p *Platform) LinkBandwidth(u, v int) float64 {
	p.check(u)
	p.check(v)
	if u == v {
		panic("platform: LinkBandwidth(u,u) is meaningless (intra-processor data does not traverse a link)")
	}
	if p.kind == CommHomogeneous {
		return p.bandwidth
	}
	return p.links[u-1][v-1]
}

// FastestFirst returns the processor identifiers sorted by non-increasing
// speed (ties broken by increasing identifier). This is the order every
// heuristic of the paper consumes processors in. The returned slice is a
// copy and may be permuted freely by the caller.
func (p *Platform) FastestFirst() []int { return append([]int(nil), p.bySpeed...) }

// Fastest returns the identifier of the fastest processor.
func (p *Platform) Fastest() int { return p.bySpeed[0] }

// OrderedProcessor returns the processor with the i-th highest speed,
// i in [0..p) (ties ordered by increasing identifier): entry i of
// FastestFirst without the copy, so allocation-free engines can rebuild
// their fastest-first free lists processor by processor.
func (p *Platform) OrderedProcessor(i int) int {
	if i < 0 || i >= len(p.bySpeed) {
		panic(fmt.Sprintf("platform: speed rank %d out of range [0..%d)", i, len(p.bySpeed)))
	}
	return p.bySpeed[i]
}

// MaxSpeed returns max_u s_u.
func (p *Platform) MaxSpeed() float64 { return p.speeds[p.bySpeed[0]-1] }

// TotalSpeed returns Σ_u s_u, used by work-based period lower bounds.
func (p *Platform) TotalSpeed() float64 {
	t := 0.0
	for _, s := range p.speeds {
		t += s
	}
	return t
}

// MinLinkBandwidth returns the smallest bandwidth over all (ordered) pairs;
// on homogeneous platforms this is b.
func (p *Platform) MinLinkBandwidth() float64 {
	if p.kind == CommHomogeneous {
		return p.bandwidth
	}
	m := p.links[0][1]
	for u := 0; u < len(p.speeds); u++ {
		for v := 0; v < len(p.speeds); v++ {
			if u != v && p.links[u][v] < m {
				m = p.links[u][v]
			}
		}
	}
	return m
}

func (p *Platform) check(u int) {
	if u < 1 || u > len(p.speeds) {
		panic(fmt.Sprintf("platform: processor %d out of range [1..%d]", u, len(p.speeds)))
	}
}

// String summarises the platform.
func (p *Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s platform, %d processors, speeds={", p.kind, len(p.speeds))
	for i, s := range p.speeds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", s)
	}
	b.WriteString("}")
	if p.kind == CommHomogeneous {
		fmt.Fprintf(&b, ", b=%g", p.bandwidth)
	}
	return b.String()
}

type jsonPlatform struct {
	Kind      string      `json:"kind"`
	Speeds    []float64   `json:"speeds"`
	Bandwidth float64     `json:"bandwidth,omitempty"`
	Links     [][]float64 `json:"links,omitempty"`
}

// MarshalJSON encodes the platform.
func (p *Platform) MarshalJSON() ([]byte, error) {
	j := jsonPlatform{Kind: p.kind.String(), Speeds: p.speeds}
	if p.kind == CommHomogeneous {
		j.Bandwidth = p.bandwidth
	} else {
		j.Links = p.links
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes and validates a platform.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var j jsonPlatform
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	var q *Platform
	var err error
	switch j.Kind {
	case CommHomogeneous.String(), "": // default
		q, err = New(j.Speeds, j.Bandwidth)
	case FullyHeterogeneous.String():
		q, err = NewFullyHeterogeneous(j.Speeds, j.Links)
	default:
		return fmt.Errorf("platform: unknown kind %q", j.Kind)
	}
	if err != nil {
		return err
	}
	*p = *q
	return nil
}

// Homogenize returns a Communication Homogeneous view of a fully
// heterogeneous platform by replacing every link with the slowest one
// (a conservative bound, per the paper's "retain the bandwidth of the
// slowest link in the path" remark). Homogeneous platforms are returned
// unchanged.
func (p *Platform) Homogenize() *Platform {
	if p.kind == CommHomogeneous {
		return p
	}
	q, err := New(p.speeds, p.MinLinkBandwidth())
	if err != nil {
		panic(err) // unreachable: fields already validated
	}
	return q
}
