module pipesched

go 1.22
