#!/usr/bin/env bash
# cluster_e2e.sh — the fleet lane's end-to-end smoke, now a fault drill:
# boot a real 3-node pipeschedd fleet (R=2) plus a single-node reference
# on loopback, with one node's peer traffic crossing a chaosproxy driven
# by a seeded fault schedule (flapping latency, 5xx bursts, dropped
# connections). Then, in order: drive a verified Zipf stream through the
# chaotic fleet, kill one clean node mid-fleet and stream against the
# survivors, restart it (rolling restart) and stream again, shrink the
# fleet by rewriting the shared peers file and SIGHUPing the survivors
# (dynamic membership), and finally run the membership-churn drill: the
# node left off the shrunk peers file must surface as a disagreement in
# /metrics on every side (never adopted, never silent), a brand-new node
# must join the fleet from a seed URL alone (-join, no peers file) and
# serve verified traffic, and partitioning that joiner must NOT move the
# disagreement counters — an unreachable peer is a health event, not a
# membership dispute. Every phase byte-compares every fleet response
# against the reference via pipeschedbench -verify and must finish with
# zero client-visible errors and zero mismatches — pipeschedbench exits
# 1 otherwise, and so does this script.
#
# Usage:  scripts/cluster_e2e.sh
# Env:    REQUESTS (default 400)   requests per phase
#         SEED     (default 7)     workload/key-sequence seed
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${REQUESTS:-400}"
SEED="${SEED:-7}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building pipeschedd, pipeschedbench and chaosproxy"
go build -o "$workdir/pipeschedd" ./cmd/pipeschedd
go build -o "$workdir/pipeschedbench" ./cmd/pipeschedbench
go build -o "$workdir/chaosproxy" ./cmd/chaosproxy

# pick_ports: choose N distinct loopback ports that nothing is listening
# on right now. The bind race between the probe and the daemon's own
# listen is real but negligible on a CI runner; a daemon that does lose
# the race exits non-zero and fails the wait below loudly.
pick_ports() {
    local n=$1 found=0 port
    local chosen=()
    while [ "$found" -lt "$n" ]; do
        port=$((20000 + RANDOM % 20000))
        case " ${chosen[*]:-} " in *" $port "*) continue ;; esac
        # The probe runs in a subshell, so no fd leaks either way; a
        # refused connection means nothing is listening there.
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            chosen+=("$port")
            found=$((found + 1))
        fi
    done
    echo "${chosen[@]}"
}

read -r P1 P2 P3 PCHAOS PREF <<<"$(pick_ports 5)"

# Node 3 advertises the chaosproxy's address: every forward, hedge and
# snapshot pull aimed at it crosses the fault schedule, while its own
# client port P3 stays clean — faults are injected into the fleet's
# internal traffic only, which is exactly what must never leak out.
URL1="http://127.0.0.1:$P1"
URL2="http://127.0.0.1:$P2"
URL3="http://127.0.0.1:$PCHAOS"
PEERS_FILE="$workdir/peers.txt"
printf '# e2e fleet\n%s\n%s\n%s\n' "$URL1" "$URL2" "$URL3" >"$PEERS_FILE"

# The schedule: latency flapping past the hedge delay (so forwards hedge
# to the other replica), 5xx bursts (so peer health marks the node down
# and traffic routes around it), and a background drop rate. Seeded, so
# failures reproduce.
cat >"$workdir/chaos.json" <<'JSON'
{
  "seed": 42,
  "rules": [
    {"name": "lag",   "latency_ms": 150, "jitter_ms": 100, "period_ms": 2000, "on_ms": 1000},
    {"name": "burst", "status": 500, "status_prob": 0.5, "period_ms": 1500, "on_ms": 500},
    {"name": "part",  "drop_prob": 0.1}
  ]
}
JSON

start_daemon() { # start_daemon logfile args...
    local log=$1
    shift
    "$workdir/pipeschedd" "$@" >"$log" 2>&1 &
    pids+=($!)
}

node_args() { # node_args port advertise-url
    echo "-addr 127.0.0.1:$1 -peers-file $PEERS_FILE -advertise $2 \
          -peer-timeout 2s -peer-backoff 500ms -hedge-after 50ms \
          -gossip-interval 500ms -sync-interval 2s"
}

wait_metric() { # wait_metric url regex description
    local url=$1 re=$2 desc=$3 i
    for i in $(seq 1 100); do
        if curl -sf "$url/metrics" | grep -qE "$re"; then
            return 0
        fi
        sleep 0.1
    done
    echo "timed out waiting for $desc at $url; metrics:" >&2
    curl -sf "$url/metrics" >&2 || true
    echo >&2
    return 1
}

wait_healthy() { # wait_healthy url
    local url=$1 i
    for i in $(seq 1 100); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon at $url never became healthy; logs:" >&2
    cat "$workdir"/*.log >&2
    return 1
}

echo "== starting 3-node fleet (node 3 peer traffic behind chaosproxy :$PCHAOS) and reference (:$PREF)"
# shellcheck disable=SC2046 # node_args is a deliberate word list
start_daemon "$workdir/node1.log" $(node_args "$P1" "$URL1")
NODE1_PID=${pids[-1]}
start_daemon "$workdir/node2.log" $(node_args "$P2" "$URL2")
NODE2_PID=${pids[-1]}
start_daemon "$workdir/node3.log" $(node_args "$P3" "$URL3")
NODE3_PID=${pids[-1]}
"$workdir/chaosproxy" -listen "127.0.0.1:$PCHAOS" -target "http://127.0.0.1:$P3" \
    -schedule "$workdir/chaos.json" >"$workdir/chaosproxy.log" 2>&1 &
pids+=($!)
CHAOS_PID=${pids[-1]}
start_daemon "$workdir/ref.log" -addr "127.0.0.1:$PREF"

for port in "$P1" "$P2" "$P3" "$PCHAOS" "$PREF"; do
    wait_healthy "http://127.0.0.1:$port"
done

# Clients talk to the daemons directly (P3, not the proxy): the chaos is
# peer-path-only, like a flaky NIC between racks.
CLIENTS="$URL1,$URL2,http://127.0.0.1:$P3"

echo "== phase 1: chaos — full fleet under the fault schedule, $REQUESTS verified requests"
"$workdir/pipeschedbench" \
    -targets "$CLIENTS" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed "$SEED" -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== phase 2: kill node 2 mid-fleet; replicas must absorb its keys"
kill "$NODE2_PID"
wait "$NODE2_PID" 2>/dev/null || true
"$workdir/pipeschedbench" \
    -targets "$URL1,http://127.0.0.1:$P3" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 1)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== phase 3: rolling restart — node 2 rejoins cold and warms from peers"
# shellcheck disable=SC2046
start_daemon "$workdir/node2-restarted.log" $(node_args "$P2" "$URL2")
NODE2_PID=${pids[-1]}
wait_healthy "$URL2"
"$workdir/pipeschedbench" \
    -targets "$CLIENTS" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 2)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== phase 4: dynamic membership — drop the chaotic node from the peers file, SIGHUP the survivors"
# Node 3 (and its proxy) leave the fleet for real: first the file, then
# the signal, then the processes. The survivors swap to the 2-node
# topology and hand off; no restart involved.
printf '# e2e fleet, shrunk\n%s\n%s\n' "$URL1" "$URL2" >"$PEERS_FILE"
kill -HUP "$NODE1_PID" "$NODE2_PID"
for port in "$P1" "$P2"; do
    for i in $(seq 1 50); do
        if curl -sf "http://127.0.0.1:$port/metrics" | grep -q '"reloads":1'; then
            break
        fi
        if [ "$i" -eq 50 ]; then
            echo "node on port $port never reloaded its topology" >&2
            exit 1
        fi
        sleep 0.1
    done
done
"$workdir/pipeschedbench" \
    -targets "$URL1,$URL2" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 3)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== phase 5: membership churn — stale node visible as disagreement, seed-list join, partition"
# Node 3 never saw the shrunk peers file: it still gossips the 3-node
# epoch-0 view. The survivors' epoch-1 view excludes it, so node 3 must
# refuse to adopt (a node never adopts a view without itself) and the
# split must be VISIBLE on every side — mismatch counters on the
# survivors, rejected adoptions on the stale node — not silently healed.
wait_metric "$URL1" '"membership_mismatches":[1-9]' "stale-node disagreement on node 1"
wait_metric "$URL2" '"membership_mismatches":[1-9]' "stale-node disagreement on node 2"
wait_metric "http://127.0.0.1:$P3" '"memberships_rejected":[1-9]' "rejected adoption on stale node 3"

# The stale node and its proxy leave for real; the fleet is nodes 1+2.
kill "$NODE3_PID" "$CHAOS_PID"
wait "$NODE3_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true

# A brand-new node joins from a seed URL alone: no peers file, no static
# list — it learns the fleet from node 1, announces itself, and both
# survivors must adopt the grown view by gossip/join, stamp-identical.
read -r P4 <<<"$(pick_ports 1)"
URL4="http://127.0.0.1:$P4"
start_daemon "$workdir/node4.log" -addr "127.0.0.1:$P4" -join "$URL1" -advertise "$URL4" \
    -peer-timeout 2s -peer-backoff 500ms -hedge-after 50ms \
    -gossip-interval 500ms -sync-interval 1s
NODE4_PID=${pids[-1]}
wait_healthy "$URL4"
wait_metric "$URL1" '"peers":3' "join propagated to node 1"
wait_metric "$URL2" '"peers":3' "join propagated to node 2"
HASH4="$(curl -sf "$URL4/metrics" | grep -o '"membership_hash":"[^"]*"' | cut -d'"' -f4)"
[ -n "$HASH4" ] || { echo "joiner serves no membership hash" >&2; exit 1; }
wait_metric "$URL1" "\"membership_hash\":\"$HASH4\"" "stamp convergence on node 1"
wait_metric "$URL2" "\"membership_hash\":\"$HASH4\"" "stamp convergence on node 2"

echo "== phase 5a: joined fleet (node 4 booted via -join only), $REQUESTS verified requests"
"$workdir/pipeschedbench" \
    -targets "$URL1,$URL2,$URL4" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 4)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== phase 5b: partition the joiner; survivors must stay clean — no phantom disagreement"
# SIGSTOP is a partition, not a membership change: connections to node 4
# hang and time out, but nobody's view moves and nobody's stamp differs,
# so the disagreement counters must NOT advance while the survivors
# serve verified traffic around the hole.
get_mismatches() { curl -sf "$1/metrics" | grep -o '"membership_mismatches":[0-9]*' | cut -d: -f2; }
M1_BEFORE="$(get_mismatches "$URL1")"
M2_BEFORE="$(get_mismatches "$URL2")"
kill -STOP "$NODE4_PID"
"$workdir/pipeschedbench" \
    -targets "$URL1,$URL2" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 5)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8
M1_AFTER="$(get_mismatches "$URL1")"
M2_AFTER="$(get_mismatches "$URL2")"
kill -CONT "$NODE4_PID"
if [ "$M1_AFTER" != "$M1_BEFORE" ] || [ "$M2_AFTER" != "$M2_BEFORE" ]; then
    echo "partition moved disagreement counters: node1 $M1_BEFORE->$M1_AFTER, node2 $M2_BEFORE->$M2_AFTER" >&2
    exit 1
fi

echo "== survivor cluster metrics"
for port in "$P1" "$P2" "$P4"; do
    echo "-- 127.0.0.1:$port"
    curl -sf "http://127.0.0.1:$port/metrics" | tr ',' '\n' |
        grep -E 'forwarded|remote|hedged|fallback|peers|reloads|handoff|membership|gossip|joins|sync' || true
done
echo "-- chaosproxy log"
tail -2 "$workdir/chaosproxy.log" || true

echo "== cluster e2e passed: chaos, peer death, rolling restart, membership shrink and churn (join + partition), all phases verified clean"
