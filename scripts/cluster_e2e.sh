#!/usr/bin/env bash
# cluster_e2e.sh — the fleet lane's end-to-end smoke: boot a real 3-node
# pipeschedd cluster plus a single-node reference on loopback, drive a
# deterministic Zipf-skewed stream through pipeschedbench with -verify
# (every fleet response byte-compared against the reference), then kill
# one daemon and run a second phase against the survivors. Both phases
# must finish with zero client-visible errors and zero mismatches —
# pipeschedbench exits 1 otherwise, and so does this script.
#
# Usage:  scripts/cluster_e2e.sh
# Env:    REQUESTS (default 400)   requests per phase
#         SEED     (default 7)     workload/key-sequence seed
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${REQUESTS:-400}"
SEED="${SEED:-7}"

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building pipeschedd and pipeschedbench"
go build -o "$workdir/pipeschedd" ./cmd/pipeschedd
go build -o "$workdir/pipeschedbench" ./cmd/pipeschedbench

# pick_ports: choose N distinct loopback ports that nothing is listening
# on right now. The bind race between the probe and the daemon's own
# listen is real but negligible on a CI runner; a daemon that does lose
# the race exits non-zero and fails the wait below loudly.
pick_ports() {
    local n=$1 found=0 port
    local chosen=()
    while [ "$found" -lt "$n" ]; do
        port=$((20000 + RANDOM % 20000))
        case " ${chosen[*]:-} " in *" $port "*) continue ;; esac
        # The probe runs in a subshell, so no fd leaks either way; a
        # refused connection means nothing is listening there.
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            chosen+=("$port")
            found=$((found + 1))
        fi
    done
    echo "${chosen[@]}"
}

read -r P1 P2 P3 PREF <<<"$(pick_ports 4)"
FLEET="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"

start_daemon() { # start_daemon logfile args...
    local log=$1
    shift
    "$workdir/pipeschedd" "$@" >"$log" 2>&1 &
    pids+=($!)
}

wait_healthy() { # wait_healthy url
    local url=$1 i
    for i in $(seq 1 100); do
        if curl -sf "$url/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon at $url never became healthy; logs:" >&2
    cat "$workdir"/*.log >&2
    return 1
}

echo "== starting 3-node fleet ($FLEET) and reference (127.0.0.1:$PREF)"
i=0
for port in "$P1" "$P2" "$P3"; do
    i=$((i + 1))
    start_daemon "$workdir/node$i.log" \
        -addr "127.0.0.1:$port" \
        -peers "$FLEET" \
        -advertise "http://127.0.0.1:$port" \
        -peer-timeout 2s -peer-backoff 1s
done
start_daemon "$workdir/ref.log" -addr "127.0.0.1:$PREF"

for port in "$P1" "$P2" "$P3" "$PREF"; do
    wait_healthy "http://127.0.0.1:$port"
done

echo "== phase 1: full fleet, $REQUESTS requests, bit-compared against the reference"
"$workdir/pipeschedbench" \
    -targets "$FLEET" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed "$SEED" -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== killing node 3 (port $P3) mid-fleet"
kill "${pids[2]}"
wait "${pids[2]}" 2>/dev/null || true

echo "== phase 2: survivors only, dead owner must degrade to local solves"
"$workdir/pipeschedbench" \
    -targets "http://127.0.0.1:$P1,http://127.0.0.1:$P2" \
    -verify "http://127.0.0.1:$PREF" \
    -requests "$REQUESTS" -seed $((SEED + 1)) -keys 64 -zipf-s 1.2 \
    -stages 6 -procs 4 -workers 8

echo "== survivor cluster metrics"
for port in "$P1" "$P2"; do
    echo "-- 127.0.0.1:$port"
    curl -sf "http://127.0.0.1:$port/metrics" | tr ',' '\n' | grep -E 'forwarded|remote|fallback|peers' || true
done

echo "== cluster e2e passed: both phases clean, one peer killed, zero client-visible errors"
