#!/usr/bin/env bash
# bench.sh — snapshot the exact-engine and portfolio benchmarks into a
# machine-readable JSON trajectory file.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_3.json in the repo root
#   BENCH_OUT=out.json scripts/bench.sh
#   BENCHTIME=0.5s scripts/bench.sh  # shorter runs (CI)
#
# The output records ns/op, B/op and allocs/op for every benchmark matched
# by PATTERN. Comparing two commits is a diff of their BENCH_*.json files;
# CI uploads the file as a build artifact on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_3.json}"
BENCHTIME="${BENCHTIME:-1s}"
PATTERN="${BENCH_PATTERN:-^(BenchmarkExactMinPeriod|BenchmarkExactParetoFront|BenchmarkExactLargeFewClass|BenchmarkPortfolioRace)$}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$raw"

awk -v go_version="$(go version | awk '{print $3}')" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                    name, $2, $3, $5, $7)
    entries = entries (entries == "" ? "" : ",\n") entry
}
END {
    if (entries == "") {
        print "bench.sh: no benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    print "{"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    print  "  \"benchmarks\": ["
    print entries
    print "  ]"
    print "}"
}' "$raw" > "$OUT"

echo "wrote $OUT"
