#!/usr/bin/env bash
# bench.sh — snapshot the exact-engine, heuristic, portfolio and serving
# benchmarks into a machine-readable JSON trajectory file.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_<next>.json in the repo root
#   scripts/bench.sh out.json        # explicit output path (first arg)
#   scripts/bench.sh some/dir        # derived name inside an existing directory
#   BENCH_OUT=out.json scripts/bench.sh
#   BENCHTIME=0.5s scripts/bench.sh  # shorter runs (CI)
#
# The default output name tracks the PR trajectory: the next generation
# after the highest committed BENCH_<n>.json (so no one has to bump a
# constant when cutting a snapshot, and CI never collides with a
# committed file). The output records ns/op, B/op and allocs/op for
# every benchmark matched by BENCH_PATTERN across BENCH_PACKAGES (the
# root solvers plus the serving layer, its cache and the cluster fleet).
# Comparing two commits is a diff of their BENCH_*.json files
# (scripts/bench_diff.sh automates it); CI uploads the fresh file as a
# build artifact on every run.
set -euo pipefail

# Resolve a caller-supplied output path against the caller's directory
# BEFORE changing into the repo root, so `scripts/bench.sh out.json`
# writes where the caller stands; the default lands in the repo root.
OUT="${BENCH_OUT:-${1:-}}"
case "$OUT" in
"" | /*) ;;
*) OUT="$PWD/$OUT" ;;
esac
cd "$(dirname "$0")/.."

# The default name is one generation past the highest committed snapshot.
latest=$(ls BENCH_*.json 2>/dev/null | sed -En 's/^BENCH_([0-9]+)\.json$/\1/p' | sort -n | tail -1)
BENCH_DEFAULT="BENCH_$((${latest:-0} + 1)).json"
[ -n "$OUT" ] || OUT="$BENCH_DEFAULT"
# A directory argument gets the derived name inside it.
[ -d "$OUT" ] && OUT="$OUT/$BENCH_DEFAULT"
BENCHTIME="${BENCHTIME:-1s}"
PATTERN="${BENCH_PATTERN:-^(BenchmarkExactMinPeriod|BenchmarkExactMinPeriodParallel|BenchmarkExactParetoFront|BenchmarkExactLargeFewClass|BenchmarkBatchGrouped|BenchmarkPortfolioRace|BenchmarkFullHetPortfolioRace|BenchmarkSplitFullyHet|BenchmarkHeuristicSolve|BenchmarkParetoSweep|BenchmarkServeSolve|BenchmarkServeBatch|BenchmarkServeSweep|BenchmarkCacheGetHitParallel|BenchmarkCacheDoHitParallel|BenchmarkCacheChurnParallel|BenchmarkFleetServe|BenchmarkFleetForward|BenchmarkFleetHedgedForward|BenchmarkFleetReplicatedMiss|BenchmarkFleetAntiEntropy|BenchmarkFleetJoinWarmup)$}"
PACKAGES="${BENCH_PACKAGES:-. ./internal/service ./internal/service/cache ./internal/cluster}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# shellcheck disable=SC2086 # PACKAGES is a deliberate word list
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" $PACKAGES | tee "$raw"

# Fields are located by their unit token, not position: benchmarks that
# b.ReportMetric extra columns (collapsed/op, miss/op) still parse.
awk -v go_version="$(go version | awk '{print $3}')" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "" || bytes == "" || allocs == "") next
    entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                    name, $2, ns, bytes, allocs)
    entries = entries (entries == "" ? "" : ",\n") entry
}
END {
    if (entries == "") {
        print "bench.sh: no benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    print "{"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    print  "  \"benchmarks\": ["
    print entries
    print "  ]"
    print "}"
}' "$raw" > "$OUT"

echo "wrote $OUT"
