// Heterocluster: the paper's headline experimental finding, reproduced as
// a standalone program — mono-criterion splitting heuristics win on small
// clusters, but bi-criteria heuristics become mandatory on large ones
// (Section 5.3: "the introduction of bi-criteria heuristics was not fully
// successful for small clusters but turned out to be mandatory to achieve
// good performance on larger platforms").
//
// The program runs the same E2 workload on p = 10 and p = 100 platforms
// and compares H5 ("Sp mono, L fix") with H6 ("Sp bi, L fix") across a
// range of latency budgets, reporting how often and by how much each wins.
//
// Run with: go run ./examples/heterocluster
package main

import (
	"fmt"

	"pipesched"
	"pipesched/internal/workload"
)

func main() {
	const trials = 30
	const stages = 40
	for _, procs := range []int{10, 100} {
		fmt.Printf("=== p = %d processors (E2 workload, %d stages, %d trials) ===\n", procs, stages, trials)
		h5 := pipesched.LatencyHeuristics()[0]
		h6 := pipesched.LatencyHeuristics()[1]
		var h5Wins, h6Wins, ties int
		var h5Sum, h6Sum float64
		count := 0
		for seed := int64(0); seed < trials; seed++ {
			in := workload.Generate(workload.Config{
				Family: workload.E2, Stages: stages, Processors: procs, Seed: 40000 + seed,
			})
			ev := in.Evaluator()
			_, optLat := pipesched.OptimalLatency(ev)
			for _, factor := range []float64{1.2, 1.5, 2.0} {
				budget := optLat * factor
				r5, err5 := h5.MinimizePeriod(ev, budget)
				r6, err6 := h6.MinimizePeriod(ev, budget)
				if err5 != nil || err6 != nil {
					continue
				}
				count++
				h5Sum += r5.Metrics.Period
				h6Sum += r6.Metrics.Period
				switch {
				case r5.Metrics.Period < r6.Metrics.Period*(1-1e-9):
					h5Wins++
				case r6.Metrics.Period < r5.Metrics.Period*(1-1e-9):
					h6Wins++
				default:
					ties++
				}
			}
		}
		fmt.Printf("  %-16s wins %3d   mean period %8.3f\n", h5.Name(), h5Wins, h5Sum/float64(count))
		fmt.Printf("  %-16s wins %3d   mean period %8.3f\n", h6.Name(), h6Wins, h6Sum/float64(count))
		fmt.Printf("  ties %d of %d comparisons\n", ties, count)
		if procs == 10 {
			fmt.Println("  (paper: on small clusters the mono-criterion splitter is very competitive)")
		} else {
			fmt.Println("  (paper: on large platforms the bi-criteria variant outperforms it)")
		}
		fmt.Println()
	}
}
