// Quickstart: map a four-stage pipeline onto a small heterogeneous
// cluster, trading latency against throughput exactly as in the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pipesched"
)

func main() {
	// A pipeline of 4 stages. Stage works w_k are in abstract operations,
	// communication sizes δ_k in data units (δ_0 feeds stage 1 from the
	// outside world, δ_4 returns the result).
	app, err := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	if err != nil {
		log.Fatal(err)
	}
	// A Communication Homogeneous platform: four processors of different
	// speeds, all links at bandwidth 10 (the paper's setting).
	plat, err := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10)
	if err != nil {
		log.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)

	// Lemma 1: minimum latency = everything on the fastest processor.
	single, optLat := pipesched.OptimalLatency(ev)
	fmt.Printf("latency-optimal mapping: %v\n", single)
	fmt.Printf("  latency %.2f, but period also %.2f — poor throughput\n\n",
		optLat, ev.Period(single))

	// Bi-criteria: the best latency achievable with period ≤ 20.
	res, err := pipesched.BestUnderPeriod(ev, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best mapping with period ≤ 20: %v\n", res.Mapping)
	fmt.Printf("  period %.2f, latency %.2f\n\n", res.Metrics.Period, res.Metrics.Latency)

	// And the converse: the best period achievable with latency ≤ 35.
	res2, err := pipesched.BestUnderLatency(ev, 35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best mapping with latency ≤ 35: %v\n", res2.Mapping)
	fmt.Printf("  period %.2f, latency %.2f\n\n", res2.Metrics.Period, res2.Metrics.Latency)

	// Verify the analytic numbers against the discrete-event simulator.
	rep, err := pipesched.Simulate(ev, res.Mapping, pipesched.SimulationOptions{DataSets: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation of 200 data sets through the period-bounded mapping:\n")
	fmt.Printf("  measured period  %.4f (analytic %.4f)\n", rep.SteadyStatePeriod, res.Metrics.Period)
	fmt.Printf("  measured latency %.4f (analytic %.4f)\n", rep.MaxLatency, res.Metrics.Latency)
}
