// Datacutter: a chain of filtering operations over a large archival data
// set, modelled after the DataCutter workloads the paper's related-work
// section discusses (Beynon et al.): each filter reduces or transforms a
// data stream, and the whole chain must sustain a target ingest rate.
//
// The example maps the filter chain under a throughput requirement
// (period-constrained heuristics H1–H4), explores the full heuristic
// trade-off frontier, and compares it with the exact Pareto front.
//
// Run with: go run ./examples/datacutter
package main

import (
	"fmt"
	"log"
	"sort"

	"pipesched"
)

func main() {
	// An eight-filter chain: early filters are cheap but move huge data
	// (decompress, select); later ones are compute-heavy on reduced data
	// (cluster, render). Works in mega-ops per chunk, sizes in MB.
	app, err := pipesched.NewPipeline(
		[]float64{40, 60, 150, 300, 700, 900, 400, 120},
		[]float64{800, 780, 600, 420, 260, 120, 90, 60, 25})
	if err != nil {
		log.Fatal(err)
	}
	// A departmental cluster: ten nodes with mixed generations, switched
	// network of bandwidth 100 MB per time unit.
	plat, err := pipesched.NewPlatform(
		[]float64{95, 90, 72, 66, 60, 48, 40, 33, 25, 18}, 100)
	if err != nil {
		log.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	_, optLat := pipesched.OptimalLatency(ev)
	lb := pipesched.PeriodLowerBound(ev)
	fmt.Printf("filter chain: %d filters on %d nodes; period lower bound %.2f, optimal latency %.2f\n\n",
		app.Stages(), plat.Processors(), lb, optLat)

	// The ingest requirement: one chunk every 25 time units.
	const targetPeriod = 25
	fmt.Printf("requirement: period ≤ %d\n", targetPeriod)
	for _, h := range pipesched.PeriodHeuristics() {
		res, err := h.MinimizeLatency(ev, targetPeriod)
		if err != nil {
			fmt.Printf("  %-16s failed: %v\n", h.Name(), err)
			continue
		}
		fmt.Printf("  %-16s period %6.2f  latency %7.2f  (%d nodes) %v\n",
			h.Name(), res.Metrics.Period, res.Metrics.Latency, res.Mapping.Size(), res.Mapping)
	}

	// Trace the heuristic trade-off frontier by sweeping the period
	// requirement, keeping the best heuristic answer at each point.
	fmt.Printf("\nheuristic trade-off frontier (best of H1–H4 per period bound):\n")
	type point struct{ period, latency float64 }
	var frontier []point
	for bound := lb; bound < 2.2*lb; bound += lb / 8 {
		res, err := pipesched.BestUnderPeriod(ev, bound)
		if err != nil {
			continue
		}
		frontier = append(frontier, point{res.Metrics.Period, res.Metrics.Latency})
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].period < frontier[j].period })
	for _, pt := range frontier {
		fmt.Printf("  period %7.2f → latency %7.2f\n", pt.period, pt.latency)
	}

	// The cluster has 10 nodes — the exact solver's bitmask DP still
	// fits. Compare the heuristic frontier with ground truth.
	front, err := pipesched.ExactParetoFront(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact Pareto front (%d points):\n", len(front))
	for _, pt := range front {
		fmt.Printf("  period %7.2f → latency %7.2f   %v\n",
			pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
	}
}
