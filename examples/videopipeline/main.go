// Videopipeline: an interactive video-processing workflow — the kind of
// latency-sensitive pipeline application the paper's introduction
// motivates. Frames flow through decode → denoise → analyse → encode →
// package stages; viewers need bounded end-to-end latency (responsiveness)
// while the service needs enough throughput to sustain the frame rate.
//
// The example sweeps the frame-rate requirement and shows which mappings
// the latency-constrained heuristics (H5, H6) find, then checks the best
// one against the exact optimum and the discrete-event simulator.
//
// Run with: go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"

	"pipesched"
)

func main() {
	// Stage works are in mega-operations per frame; communication sizes
	// in kilobytes per frame. Decode and encode are heavy; the raw
	// intermediate frames (δ_1..δ_3) are much larger than the compressed
	// input/output streams.
	app, err := pipesched.NewPipeline(
		[]float64{900, 350, 500, 1200, 150}, // decode denoise analyse encode package
		[]float64{250, 6000, 6000, 6000, 300, 250})
	if err != nil {
		log.Fatal(err)
	}
	// A small rendering cluster: two fast nodes, three mid, one slow;
	// gigabit-class interconnect (in KB per time unit).
	plat, err := pipesched.NewPlatform([]float64{320, 300, 180, 170, 160, 90}, 12000)
	if err != nil {
		log.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	_, optLat := pipesched.OptimalLatency(ev)
	fmt.Printf("video pipeline: %d stages on %d nodes\n", app.Stages(), plat.Processors())
	fmt.Printf("minimum possible end-to-end latency: %.2f time units\n\n", optLat)

	// The product requirement: keep latency within 1.5× of the optimum;
	// within that budget, push the frame period as low as possible.
	budget := optLat * 1.5
	fmt.Printf("latency budget %.2f (1.5× optimum):\n", budget)
	for _, h := range pipesched.LatencyHeuristics() {
		res, err := h.MinimizePeriod(ev, budget)
		if err != nil {
			fmt.Printf("  %-16s failed: %v\n", h.Name(), err)
			continue
		}
		fmt.Printf("  %-16s period %.3f  latency %.2f  %v\n",
			h.Name(), res.Metrics.Period, res.Metrics.Latency, res.Mapping)
	}

	best, err := pipesched.BestUnderLatency(ev, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen mapping sustains %.2f frames per 100 time units\n",
		100/best.Metrics.Period)

	// How far from optimal is the heuristic on this instance? The
	// platform is small enough for the exact solver.
	opt, err := pipesched.ExactMinPeriodUnderLatency(ev, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum under the same budget: period %.3f (heuristic %.3f, gap %.1f%%)\n",
		opt.Metrics.Period, best.Metrics.Period,
		100*(best.Metrics.Period-opt.Metrics.Period)/opt.Metrics.Period)

	// Replay the chosen mapping in the simulator and report utilization —
	// where the provisioning headroom lives.
	rep, err := pipesched.Simulate(ev, best.Mapping, pipesched.SimulationOptions{DataSets: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated 500 frames: measured period %.3f, max latency %.2f\n",
		rep.SteadyStatePeriod, rep.MaxLatency)
	for j, u := range rep.Utilization {
		iv := best.Mapping.Interval(j)
		fmt.Printf("  node P%d (stages %d..%d): %.0f%% busy\n", iv.Proc, iv.Start, iv.End, 100*u)
	}
}
