// Dealskeleton: the paper's concluding extension in action. A pipeline
// with one computationally dominant stage hits a hard floor under pure
// interval mapping — no split can make a single stage cheaper than its own
// cycle-time. Nesting a *deal* (farm) skeleton replicates that stage over
// several processors and breaks the floor.
//
// Run with: go run ./examples/dealskeleton
package main

import (
	"fmt"
	"log"

	"pipesched"
)

func main() {
	// A 5-stage scientific workflow whose middle stage (a dense solve)
	// dwarfs the rest.
	app, err := pipesched.NewPipeline(
		[]float64{30, 40, 600, 40, 30},
		[]float64{5, 20, 20, 20, 20, 5})
	if err != nil {
		log.Fatal(err)
	}
	// Six identical nodes — replication is most natural on homogeneous
	// replicas, though the model supports mixed speeds too.
	plat, err := pipesched.NewPlatform([]float64{10, 10, 10, 10, 10, 10}, 10)
	if err != nil {
		log.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)

	// The pure interval-mapping floor: the heavy stage costs
	// δ/b + 600/10 + δ/b = 2+60+2 = 64 on any node, so no interval
	// mapping gets below period ≈ 64. The exact solver confirms it.
	opt, err := pipesched.ExactMinPeriod(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best plain interval mapping: period %.1f  %v\n", opt.Metrics.Period, opt.Mapping)

	// The splitting heuristics hit the same floor.
	best, err := pipesched.BestUnderPeriod(ev, opt.Metrics.Period)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best heuristic mapping:      period %.1f  %v\n", best.Metrics.Period, best.Mapping)

	// Ask for twice the throughput: impossible without replication...
	if _, err := pipesched.BestUnderPeriod(ev, opt.Metrics.Period/2); err != nil {
		fmt.Printf("\nperiod ≤ %.1f without replication: %v\n", opt.Metrics.Period/2, err)
	}

	// ...but easy with a deal skeleton on the bottleneck stage.
	res, err := pipesched.DealSplit(ev, opt.Metrics.Period/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with deal skeletons:         period %.1f  latency %.1f\n  %v\n",
		res.Metrics.Period, res.Metrics.Latency, res.Mapping)
	fmt.Printf("\nthroughput gained %.1f×, latency cost %.1f%%\n",
		opt.Metrics.Period/res.Metrics.Period,
		100*(res.Metrics.Latency-opt.Metrics.Latency)/opt.Metrics.Latency)
}
