package pipesched

import (
	"context"
	"net"

	"pipesched/internal/cluster"
	"pipesched/internal/service"
)

// The serving layer, built on internal/service: a long-lived HTTP daemon
// exposing the solvers over a JSON API with a canonical-instance result
// cache and singleflight deduplication. The hot path is built for high
// QPS: the result cache is sharded by key bits so cores never serialise
// on one mutex, request decode and canonical hashing run on pooled
// scratch, metrics are lock-free atomics, and cache hits are served as
// pre-rendered bytes in a single write. cmd/pipeschedd is the packaged
// daemon; these façade hooks embed the same server in any Go process.
type (
	// Server is the HTTP solver service. It implements http.Handler, so
	// it mounts under any mux or http.Server; use its Serve method (or
	// the Serve function below) for a managed listen-drain-stop
	// lifecycle.
	Server = service.Server
	// ServerOptions configure a Server: cache bound, cache shard count
	// (CacheShards; 0 auto-selects one power-of-two shard per core),
	// worker cap, per-request timeout, drain timeout, body limit and
	// logger. The zero value is fully usable.
	ServerOptions = service.Options
	// ServerMetrics is the snapshot served by GET /metrics.
	ServerMetrics = service.MetricsSnapshot
	// ServerClusterConfig opts a Server into peer-aware fleet serving
	// via ServerOptions.Cluster: a Topology built by NewClusterTopology
	// plus the replication factor, forward timeout, hedge delay, peer
	// backoff window and cap, and snapshot bound (zero values select the
	// cluster defaults). Each canonical cache key has an ordered replica
	// set (default two owners); local misses forward to the first
	// available replica — hedging to the next when it is slow — and
	// install the relayed bytes as a second-tier hit. Only when every
	// replica is down does the node degrade to a local solve. Joining
	// nodes warm from their peers' hottest entries, and
	// Server.ReloadTopology swaps the fleet view at runtime with
	// snapshot-driven key handoff.
	ServerClusterConfig = service.ClusterConfig
	// ClusterTopology is the fleet view: the full normalized peer list
	// and this node's position in it. Build it with NewClusterTopology.
	ClusterTopology = cluster.Topology
)

// NewServer builds the HTTP solver service: POST /v1/solve, /v1/batch and
// /v1/sweep routed through the portfolio engine with per-request contexts
// and deadlines, plus GET /healthz and /metrics. Both platform kinds are
// served, dispatched by capability — comm-homogeneous instances race the
// paper's H1–H6 (and the exact DP where eligible), fully heterogeneous
// ones the F1/F5/F6 lane. Identical requests are
// canonically hashed into a sharded, bounded LRU result cache; concurrent
// identical requests collapse to one underlying solve.
func NewServer(opts ServerOptions) *Server { return service.New(opts) }

// NewClusterTopology validates a fleet description for peer-aware
// serving: peers is the base URL of every node in the fleet (this node
// included), advertise is this node's own entry. URLs are normalized
// (scheme defaulted to http, host lowercased, trailing slash dropped)
// before comparison, the list must be duplicate-free, and advertise
// must appear in it. Every node must be given the same peer list —
// ownership is rendezvous-hashed over the sorted normalized URLs, so
// identical lists mean identical ownership everywhere.
func NewClusterTopology(peers []string, advertise string) (*ClusterTopology, error) {
	return cluster.NewTopology(peers, advertise)
}

// Serve listens on addr and serves the solver API until ctx is cancelled,
// then shuts down gracefully: in-flight requests get ServerOptions.
// DrainTimeout to finish. It returns nil after a clean drain.
func Serve(ctx context.Context, addr string, opts ServerOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return service.New(opts).Serve(ctx, ln)
}
