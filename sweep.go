package pipesched

import (
	"context"
	"fmt"
	"math"

	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/portfolio"
	"pipesched/internal/sim"
)

// TradeoffPoint is one point of a heuristic trade-off frontier: a concrete
// mapping together with its metrics.
type TradeoffPoint struct {
	Metrics Metrics
	Mapping *Mapping
}

// HeuristicParetoSweep traces an approximate Pareto frontier using only
// the paper's polynomial heuristics: it sweeps `points` period bounds
// between the period lower bound and the single-processor period, runs all
// four period-constrained heuristics plus both latency-constrained ones
// (fed with the latencies discovered so far), and returns the
// non-dominated results sorted by increasing period.
//
// Unlike ExactParetoFront this scales to large platforms (nothing
// exponential); the returned frontier is a superset-dominated
// approximation of the true front — every returned point is achievable,
// none dominates another, but better points may exist.
//
// The (grid point, heuristic) runs of each phase are independent, so they
// fan out over a GOMAXPROCS-bounded worker pool; candidates are then
// aggregated in grid order, making the frontier identical to a serial
// sweep.
func HeuristicParetoSweep(ev *Evaluator, points int) []TradeoffPoint {
	if points < 2 {
		points = 2
	}
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	lo := lowerbound.Period(ev)
	hi := ev.Period(single)
	ctx := context.Background()
	var raw []TradeoffPoint
	add := func(res Result, err error) {
		if err != nil {
			return
		}
		raw = append(raw, TradeoffPoint{Metrics: res.Metrics, Mapping: res.Mapping})
	}
	type run struct {
		res Result
		err error
	}
	type periodTask struct {
		bound float64
		h     PeriodConstrained
	}
	var periodTasks []periodTask
	for i := 0; i < points; i++ {
		bound := lo + (hi-lo)*float64(i)/float64(points-1)
		for _, h := range PeriodHeuristics() {
			periodTasks = append(periodTasks, periodTask{bound: bound, h: h})
		}
	}
	runs, _ := portfolio.Map(ctx, 0, periodTasks, func(_ context.Context, t periodTask) run {
		res, err := t.h.MinimizeLatency(ev, t.bound)
		return run{res: res, err: err}
	})
	for _, r := range runs {
		add(r.res, r.err)
	}
	// Feed the latency range the period sweep discovered back through
	// the latency-constrained heuristics: they sometimes find better
	// periods at equal latency.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, pt := range raw {
		minLat = math.Min(minLat, pt.Metrics.Latency)
		maxLat = math.Max(maxLat, pt.Metrics.Latency)
	}
	if len(raw) > 0 && maxLat > minLat {
		type latencyTask struct {
			budget float64
			h      LatencyConstrained
		}
		var latencyTasks []latencyTask
		for i := 0; i < points; i++ {
			budget := minLat + (maxLat-minLat)*float64(i)/float64(points-1)
			for _, h := range LatencyHeuristics() {
				latencyTasks = append(latencyTasks, latencyTask{budget: budget, h: h})
			}
		}
		runs, _ := portfolio.Map(ctx, 0, latencyTasks, func(_ context.Context, t latencyTask) run {
			res, err := t.h.MinimizePeriod(ev, t.budget)
			return run{res: res, err: err}
		})
		for _, r := range runs {
			add(r.res, r.err)
		}
	}
	// Dominance prune through the shared frontier filter.
	metrics := make([]Metrics, len(raw))
	for i, pt := range raw {
		metrics[i] = pt.Metrics
	}
	var front []TradeoffPoint
	for _, i := range mapping.Frontier(metrics) {
		front = append(front, raw[i])
	}
	return front
}

// SimulationTrace is a fully evented simulation run; see Gantt.
type SimulationTrace = sim.Trace

// SimulationEvent is one operation of a traced run.
type SimulationEvent = sim.Event

// SimulateTraced runs the discrete-event simulator recording every
// receive/compute/send operation; use the result's Gantt method (or the
// Gantt helper below) to visualise pipeline behaviour. Intended for small
// data-set counts.
func SimulateTraced(ev *Evaluator, m *Mapping, opts SimulationOptions) (SimulationTrace, error) {
	return sim.RunTraced(ev, m, opts)
}

// Gantt renders a traced simulation as an ASCII Gantt chart, one row per
// processor, covering [0, maxTime) (0 = whole makespan).
func Gantt(tr SimulationTrace, width int, maxTime float64) string {
	return tr.Gantt(width, maxTime)
}

// FormatTradeoff renders a frontier as an aligned text table.
func FormatTradeoff(front []TradeoffPoint) string {
	if len(front) == 0 {
		return "(empty frontier)\n"
	}
	out := fmt.Sprintf("%10s %10s  mapping\n", "period", "latency")
	for _, pt := range front {
		out += fmt.Sprintf("%10.4g %10.4g  %v\n", pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
	}
	return out
}
