package pipesched

import (
	"fmt"
	"math"
	"sort"

	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/sim"
)

// TradeoffPoint is one point of a heuristic trade-off frontier: a concrete
// mapping together with its metrics.
type TradeoffPoint struct {
	Metrics Metrics
	Mapping *Mapping
}

// HeuristicParetoSweep traces an approximate Pareto frontier using only
// the paper's polynomial heuristics: it sweeps `points` period bounds
// between the period lower bound and the single-processor period, runs all
// four period-constrained heuristics plus both latency-constrained ones
// (fed with the latencies discovered so far), and returns the
// non-dominated results sorted by increasing period.
//
// Unlike ExactParetoFront this scales to large platforms (nothing
// exponential); the returned frontier is a superset-dominated
// approximation of the true front — every returned point is achievable,
// none dominates another, but better points may exist.
func HeuristicParetoSweep(ev *Evaluator, points int) []TradeoffPoint {
	if points < 2 {
		points = 2
	}
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	lo := lowerbound.Period(ev)
	hi := ev.Period(single)
	var raw []TradeoffPoint
	add := func(res Result, err error) {
		if err != nil {
			return
		}
		raw = append(raw, TradeoffPoint{Metrics: res.Metrics, Mapping: res.Mapping})
	}
	for i := 0; i < points; i++ {
		bound := lo + (hi-lo)*float64(i)/float64(points-1)
		for _, h := range PeriodHeuristics() {
			res, err := h.MinimizeLatency(ev, bound)
			add(res, err)
		}
	}
	// Feed the latency range the period sweep discovered back through
	// the latency-constrained heuristics: they sometimes find better
	// periods at equal latency.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, pt := range raw {
		minLat = math.Min(minLat, pt.Metrics.Latency)
		maxLat = math.Max(maxLat, pt.Metrics.Latency)
	}
	if len(raw) > 0 && maxLat > minLat {
		for i := 0; i < points; i++ {
			budget := minLat + (maxLat-minLat)*float64(i)/float64(points-1)
			for _, h := range LatencyHeuristics() {
				res, err := h.MinimizePeriod(ev, budget)
				add(res, err)
			}
		}
	}
	// Dominance prune.
	sort.Slice(raw, func(i, j int) bool {
		a, b := raw[i].Metrics, raw[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []TradeoffPoint
	best := math.Inf(1)
	for _, pt := range raw {
		if pt.Metrics.Latency < best-1e-12 {
			front = append(front, pt)
			best = pt.Metrics.Latency
		}
	}
	return front
}

// SimulationTrace is a fully evented simulation run; see Gantt.
type SimulationTrace = sim.Trace

// SimulationEvent is one operation of a traced run.
type SimulationEvent = sim.Event

// SimulateTraced runs the discrete-event simulator recording every
// receive/compute/send operation; use the result's Gantt method (or the
// Gantt helper below) to visualise pipeline behaviour. Intended for small
// data-set counts.
func SimulateTraced(ev *Evaluator, m *Mapping, opts SimulationOptions) (SimulationTrace, error) {
	return sim.RunTraced(ev, m, opts)
}

// Gantt renders a traced simulation as an ASCII Gantt chart, one row per
// processor, covering [0, maxTime) (0 = whole makespan).
func Gantt(tr SimulationTrace, width int, maxTime float64) string {
	return tr.Gantt(width, maxTime)
}

// FormatTradeoff renders a frontier as an aligned text table.
func FormatTradeoff(front []TradeoffPoint) string {
	if len(front) == 0 {
		return "(empty frontier)\n"
	}
	out := fmt.Sprintf("%10s %10s  mapping\n", "period", "latency")
	for _, pt := range front {
		out += fmt.Sprintf("%10.4g %10.4g  %v\n", pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
	}
	return out
}
