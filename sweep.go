package pipesched

import (
	"context"
	"fmt"

	"pipesched/internal/portfolio"
	"pipesched/internal/sim"
)

// TradeoffPoint is one point of a heuristic trade-off frontier: a concrete
// mapping together with its metrics.
type TradeoffPoint = portfolio.TradeoffPoint

// HeuristicParetoSweep traces an approximate Pareto frontier using only
// polynomial heuristics: it sweeps `points` period bounds between the
// period lower bound and the single-processor period, runs the
// platform's period-constrained lane (the paper's H1–H4 on
// comm-homogeneous platforms, the free-processor-choice F1 on fully
// heterogeneous ones) plus its latency-constrained lane (fed with the
// latencies discovered so far), and returns the non-dominated results
// sorted by increasing period.
//
// Unlike ExactParetoFront this scales to large platforms (nothing
// exponential); the returned frontier is a superset-dominated
// approximation of the true front — every returned point is achievable,
// none dominates another, but better points may exist.
//
// The sweep is warm-started: each heuristic owns one lane that walks the
// sorted bound grid on a single pooled engine, extending its splitting
// trajectory across adjacent grid points instead of recomputing the
// shared prefix, reusing repeated results outright, and stopping at the
// heuristic's failure threshold. Lanes fan out over a GOMAXPROCS-bounded
// worker pool; every per-point result is bit-identical to a fresh run
// and candidates are aggregated in grid order, so the frontier is
// identical to the historical point-by-point sweep. The sweep core lives
// in internal/portfolio (ParetoSweep), where the serving layer reaches
// it with per-request contexts.
func HeuristicParetoSweep(ev *Evaluator, points int) []TradeoffPoint {
	return portfolio.ParetoSweep(context.Background(), ev, points, 0)
}

// SimulationTrace is a fully evented simulation run; see Gantt.
type SimulationTrace = sim.Trace

// SimulationEvent is one operation of a traced run.
type SimulationEvent = sim.Event

// SimulateTraced runs the discrete-event simulator recording every
// receive/compute/send operation; use the result's Gantt method (or the
// Gantt helper below) to visualise pipeline behaviour. Intended for small
// data-set counts.
func SimulateTraced(ev *Evaluator, m *Mapping, opts SimulationOptions) (SimulationTrace, error) {
	return sim.RunTraced(ev, m, opts)
}

// Gantt renders a traced simulation as an ASCII Gantt chart, one row per
// processor, covering [0, maxTime) (0 = whole makespan).
func Gantt(tr SimulationTrace, width int, maxTime float64) string {
	return tr.Gantt(width, maxTime)
}

// FormatTradeoff renders a frontier as an aligned text table.
func FormatTradeoff(front []TradeoffPoint) string {
	if len(front) == 0 {
		return "(empty frontier)\n"
	}
	out := fmt.Sprintf("%10s %10s  mapping\n", "period", "latency")
	for _, pt := range front {
		out += fmt.Sprintf("%10.4g %10.4g  %v\n", pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
	}
	return out
}
