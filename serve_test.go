package pipesched

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNewServerSolveRoundTrip(t *testing.T) {
	ts := httptest.NewServer(NewServer(ServerOptions{}))
	defer ts.Close()

	in := GenerateWorkload(WorkloadConfig{Family: E1, Stages: 6, Processors: 4, Seed: 9})
	body, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr struct {
			Solver string  `json:"solver"`
			Period float64 `json:"period"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || sr.Solver == "" || sr.Period <= 0 {
			t.Fatalf("request %d: status %d, %+v", i, resp.StatusCode, sr)
		}
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Fatalf("request %d: X-Cache %q, want %q", i, got, want)
		}
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, "127.0.0.1:0", ServerOptions{DrainTimeout: time.Second}) }()
	// Let the listener come up, then cancel; Serve must return nil.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after cancel")
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	if err := Serve(context.Background(), "500.500.500.500:99999", ServerOptions{}); err == nil {
		t.Fatal("Serve accepted an unusable address")
	}
}
