package pipesched_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"pipesched"
)

// serialBestUnderPeriod is the original sequential façade loop, kept
// verbatim as the reference the concurrent portfolio must reproduce.
func serialBestUnderPeriod(ev *pipesched.Evaluator, maxPeriod float64) (pipesched.Result, bool) {
	var best pipesched.Result
	found := false
	for _, h := range pipesched.PeriodHeuristics() {
		res, err := h.MinimizeLatency(ev, maxPeriod)
		if err != nil {
			continue
		}
		if !found ||
			res.Metrics.Latency < best.Metrics.Latency ||
			(res.Metrics.Latency == best.Metrics.Latency && res.Metrics.Period < best.Metrics.Period) {
			best, found = res, true
		}
	}
	return best, found
}

// serialBestUnderLatency is the sequential reference of BestUnderLatency.
func serialBestUnderLatency(ev *pipesched.Evaluator, maxLatency float64) (pipesched.Result, bool) {
	var best pipesched.Result
	found := false
	for _, h := range pipesched.LatencyHeuristics() {
		res, err := h.MinimizePeriod(ev, maxLatency)
		if err != nil {
			continue
		}
		if !found || res.Metrics.Period < best.Metrics.Period {
			best, found = res, true
		}
	}
	return best, found
}

func bitsEqual(a, b pipesched.Metrics) bool {
	return math.Float64bits(a.Period) == math.Float64bits(b.Period) &&
		math.Float64bits(a.Latency) == math.Float64bits(b.Latency)
}

// TestBestUnderPeriodMatchesSerialLoop: the concurrent façade returns
// bit-identical results to the sequential loop it replaced, across
// families, sizes and bounds.
func TestBestUnderPeriodMatchesSerialLoop(t *testing.T) {
	for _, fam := range []pipesched.WorkloadFamily{pipesched.E1, pipesched.E2, pipesched.E3, pipesched.E4} {
		for seed := int64(1); seed <= 5; seed++ {
			in := pipesched.GenerateWorkload(pipesched.WorkloadConfig{
				Family: fam, Stages: 12, Processors: 10, Seed: seed,
			})
			ev := in.Evaluator()
			lb := pipesched.PeriodLowerBound(ev)
			for _, factor := range []float64{0.8, 1.2, 2.0, 4.0} {
				bound := lb * factor
				want, wantOK := serialBestUnderPeriod(ev, bound)
				got, err := pipesched.BestUnderPeriod(ev, bound)
				if wantOK != (err == nil) {
					t.Fatalf("%v seed %d bound %g: serial ok=%v, parallel err=%v", fam, seed, bound, wantOK, err)
				}
				if err == nil && (!bitsEqual(want.Metrics, got.Metrics) || want.Mapping.String() != got.Mapping.String()) {
					t.Fatalf("%v seed %d bound %g: serial %v %+v != parallel %v %+v",
						fam, seed, bound, want.Mapping, want.Metrics, got.Mapping, got.Metrics)
				}
			}
			_, optLat := pipesched.OptimalLatency(ev)
			for _, factor := range []float64{0.9, 1.3, 2.0} {
				bound := optLat * factor
				want, wantOK := serialBestUnderLatency(ev, bound)
				got, err := pipesched.BestUnderLatency(ev, bound)
				if wantOK != (err == nil) {
					t.Fatalf("%v seed %d latency %g: serial ok=%v, parallel err=%v", fam, seed, bound, wantOK, err)
				}
				if err == nil && (!bitsEqual(want.Metrics, got.Metrics) || want.Mapping.String() != got.Mapping.String()) {
					t.Fatalf("%v seed %d latency %g: mismatch", fam, seed, bound)
				}
			}
		}
	}
}

// TestSolveBatchFacade exercises the exported batch API end to end: 64+
// instances, both objectives, frontier sanity.
func TestSolveBatchFacade(t *testing.T) {
	var instances []pipesched.WorkloadInstance
	for seed := int64(0); seed < 64; seed++ {
		instances = append(instances, pipesched.GenerateWorkload(pipesched.WorkloadConfig{
			Family: pipesched.E2, Stages: 10, Processors: 8, Seed: 4000 + seed,
		}))
	}
	report, err := pipesched.SolveBatch(context.Background(), instances, pipesched.BatchOptions{
		Objective:     pipesched.MinimizeLatency,
		Bound:         1.5,
		RelativeBound: true,
		Exact:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != len(instances) {
		t.Fatalf("%d results for %d instances", len(report.Results), len(instances))
	}
	if report.Solved+report.Failed != len(instances) {
		t.Fatalf("solved %d + failed %d != %d", report.Solved, report.Failed, len(instances))
	}
	if report.Solved == 0 {
		t.Fatal("nothing solved at 1.5× the period lower bound")
	}
	for _, r := range report.Results {
		if r.Err != nil {
			continue
		}
		if r.Outcome.Result.Metrics.Period > r.Bound*(1+1e-9) {
			t.Fatalf("instance %d: period %g exceeds bound %g", r.Index, r.Outcome.Result.Metrics.Period, r.Bound)
		}
		if r.Outcome.Solver == "" {
			t.Fatalf("instance %d: no winning solver recorded", r.Index)
		}
	}
	// The frontier must be strictly improving in both criteria.
	for i := 1; i < len(report.Front); i++ {
		prev, cur := report.Front[i-1].Metrics, report.Front[i].Metrics
		if cur.Period <= prev.Period || cur.Latency >= prev.Latency {
			t.Fatalf("front not strictly trade-off ordered: %+v then %+v", prev, cur)
		}
	}
}

// TestPortfolioUnderPeriodUsesExact: on a small platform the DP joins the
// race and can only match or beat every heuristic.
func TestPortfolioUnderPeriodUsesExact(t *testing.T) {
	in := pipesched.GenerateWorkload(pipesched.WorkloadConfig{
		Family: pipesched.E2, Stages: 10, Processors: 6, Seed: 11,
	})
	ev := in.Evaluator()
	bound := pipesched.PeriodLowerBound(ev) * 1.6
	out, err := pipesched.PortfolioUnderPeriod(context.Background(), ev, bound)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := pipesched.ExactMinLatencyUnderPeriod(ev, bound)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Metrics.Latency > opt.Metrics.Latency*(1+1e-9) {
		t.Fatalf("portfolio latency %g worse than exact %g with the DP racing",
			out.Result.Metrics.Latency, opt.Metrics.Latency)
	}
	best, err := pipesched.BestUnderPeriod(ev, bound)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Metrics.Latency > best.Metrics.Latency {
		t.Fatalf("portfolio (with DP) lost to heuristics-only: %g > %g",
			out.Result.Metrics.Latency, best.Metrics.Latency)
	}
}

// TestSolveBatchCancelledContext: the façade propagates cancellation.
func TestSolveBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	instances := []pipesched.WorkloadInstance{
		pipesched.GenerateWorkload(pipesched.WorkloadConfig{Family: pipesched.E1, Stages: 5, Processors: 5, Seed: 1}),
	}
	_, err := pipesched.SolveBatch(ctx, instances, pipesched.BatchOptions{Bound: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
