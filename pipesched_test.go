package pipesched_test

import (
	"errors"
	"math"
	"testing"

	"pipesched"
)

func demoEvaluator(t *testing.T) *pipesched.Evaluator {
	t.Helper()
	app, err := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	return pipesched.NewEvaluator(app, plat)
}

func TestQuickstartFlow(t *testing.T) {
	ev := demoEvaluator(t)
	_, optLat := pipesched.OptimalLatency(ev)
	// Single processor: period = latency = 1 + 510/20 + 1 = 27.5.
	if math.Abs(optLat-27.5) > 1e-9 {
		t.Fatalf("optimal latency = %g, want 27.5", optLat)
	}
	res, err := pipesched.BestUnderPeriod(ev, 20)
	if err != nil {
		t.Fatalf("BestUnderPeriod: %v", err)
	}
	if res.Metrics.Period > 20+1e-9 {
		t.Errorf("period %g exceeds bound", res.Metrics.Period)
	}
	if res.Metrics.Latency < optLat-1e-9 {
		t.Errorf("latency %g below the provable optimum %g", res.Metrics.Latency, optLat)
	}
	// The chosen mapping must simulate to its claimed metrics.
	if err := pipesched.ValidateModel(ev, res.Mapping, 1e-9); err != nil {
		t.Errorf("model validation: %v", err)
	}
}

func TestBestUnderPeriodBeatsOrMatchesEachHeuristic(t *testing.T) {
	ev := demoEvaluator(t)
	best, err := pipesched.BestUnderPeriod(ev, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range pipesched.PeriodHeuristics() {
		res, err := h.MinimizeLatency(ev, 20)
		if err != nil {
			continue
		}
		if best.Metrics.Latency > res.Metrics.Latency+1e-9 {
			t.Errorf("best latency %g worse than %s's %g", best.Metrics.Latency, h.ID(), res.Metrics.Latency)
		}
	}
}

func TestBestUnderPeriodInfeasible(t *testing.T) {
	ev := demoEvaluator(t)
	_, err := pipesched.BestUnderPeriod(ev, 0.001)
	if err == nil {
		t.Fatal("impossible bound accepted")
	}
	var inf *pipesched.InfeasibleError
	if !errors.As(err, &inf) {
		t.Errorf("error does not wrap InfeasibleError: %v", err)
	}
}

func TestBestUnderLatency(t *testing.T) {
	ev := demoEvaluator(t)
	_, optLat := pipesched.OptimalLatency(ev)
	res, err := pipesched.BestUnderLatency(ev, optLat*1.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Latency > optLat*1.3+1e-9 {
		t.Errorf("latency %g exceeds bound", res.Metrics.Latency)
	}
	if _, err := pipesched.BestUnderLatency(ev, optLat*0.5); err == nil {
		t.Error("sub-optimal latency bound accepted")
	}
}

func TestHeuristicsAgainstExactOnFacade(t *testing.T) {
	ev := demoEvaluator(t)
	lb := pipesched.PeriodLowerBound(ev)
	opt, err := pipesched.ExactMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if lb > opt.Metrics.Period+1e-9 {
		t.Errorf("lower bound %g above exact optimum %g", lb, opt.Metrics.Period)
	}
	res, err := pipesched.BestUnderPeriod(ev, opt.Metrics.Period*1.1)
	if err != nil {
		t.Fatalf("heuristics failed near the optimum: %v", err)
	}
	exactLat, err := pipesched.ExactMinLatencyUnderPeriod(ev, opt.Metrics.Period*1.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Latency < exactLat.Metrics.Latency-1e-9 {
		t.Errorf("heuristic latency %g beats the optimum %g", res.Metrics.Latency, exactLat.Metrics.Latency)
	}
}

func TestExactParetoFrontFacade(t *testing.T) {
	ev := demoEvaluator(t)
	front, err := pipesched.ExactParetoFront(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	_, optLat := pipesched.OptimalLatency(ev)
	if math.Abs(front[len(front)-1].Metrics.Latency-optLat) > 1e-9 {
		t.Errorf("front does not end at the optimal latency")
	}
}

func TestWorkloadGenerationFacade(t *testing.T) {
	in := pipesched.GenerateWorkload(pipesched.WorkloadConfig{
		Family: pipesched.E3, Stages: 20, Processors: 10, Seed: 1,
	})
	ev := in.Evaluator()
	res, err := pipesched.BestUnderPeriod(ev, pipesched.PeriodLowerBound(ev)*3)
	if err != nil {
		t.Fatalf("E3 instance unschedulable at 3× lower bound: %v", err)
	}
	rep, err := pipesched.Simulate(ev, res.Mapping, pipesched.SimulationOptions{DataSets: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SteadyStatePeriod-res.Metrics.Period) > 1e-6*(1+res.Metrics.Period) {
		t.Errorf("simulated period %g vs analytic %g", rep.SteadyStatePeriod, res.Metrics.Period)
	}
}

func TestFullyHeterogeneousFacade(t *testing.T) {
	app, err := pipesched.NewPipeline([]float64{50, 50}, []float64{0, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	links := [][]float64{
		{0, 1, 100},
		{1, 0, 1},
		{100, 1, 0},
	}
	plat, err := pipesched.NewFullyHeterogeneousPlatform([]float64{10, 9, 8}, links)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	res, err := pipesched.SplitFullyHet(ev, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Period > 7.5+1e-9 {
		t.Errorf("period %g exceeds bound", res.Metrics.Period)
	}
}

func TestExplicitMappingFacade(t *testing.T) {
	app, _ := pipesched.NewPipeline([]float64{1, 2}, []float64{0, 0, 0})
	plat, _ := pipesched.NewPlatform([]float64{1, 1}, 1)
	m, err := pipesched.NewMapping(app, plat, []pipesched.Interval{
		{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	if got := ev.Period(m); math.Abs(got-2) > 1e-9 {
		t.Errorf("period = %g, want 2", got)
	}
	if _, err := pipesched.NewMapping(app, plat, []pipesched.Interval{{Start: 1, End: 1, Proc: 1}}); err == nil {
		t.Error("partial mapping accepted")
	}
	single := pipesched.SingleProcessorMapping(app, plat, 2)
	if single.ProcessorOf(1) != 2 {
		t.Error("SingleProcessorMapping ignored the processor argument")
	}
}
