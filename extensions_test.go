package pipesched_test

import (
	"math"
	"testing"

	"pipesched"
)

func TestOneToOneFacade(t *testing.T) {
	app, err := pipesched.NewPipeline([]float64{9, 1}, make([]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	plat, err := pipesched.NewPlatform([]float64{3, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	_, met, err := pipesched.OneToOneMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met.Period-3) > 1e-9 {
		t.Errorf("one-to-one min period = %g, want 3", met.Period)
	}
	m, met2, err := pipesched.OneToOneMinLatency(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(met2.Latency-4) > 1e-9 {
		t.Errorf("one-to-one min latency = %g, want 4", met2.Latency)
	}
	// One-to-one optima can never beat the interval optimum (intervals
	// include the one-to-one class when n ≤ p).
	intervalOpt, err := pipesched.ExactMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if met.Period < intervalOpt.Metrics.Period-1e-9 {
		t.Errorf("one-to-one period %g beats interval optimum %g", met.Period, intervalOpt.Metrics.Period)
	}
	_ = m
}

func TestIdenticalSpeedFacade(t *testing.T) {
	app, err := pipesched.NewPipeline([]float64{4, 4}, []float64{0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := pipesched.NewPlatform([]float64{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	res, err := pipesched.IdenticalSpeedMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Period-3) > 1e-9 {
		t.Errorf("identical-speed min period = %g, want 3", res.Metrics.Period)
	}
	// Exact agreement with the exponential solver.
	expo, err := pipesched.ExactMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Period-expo.Metrics.Period) > 1e-9 {
		t.Errorf("polynomial %g vs exponential %g", res.Metrics.Period, expo.Metrics.Period)
	}
	// Under a period bound too.
	under, err := pipesched.IdenticalSpeedMinLatencyUnderPeriod(ev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if under.Metrics.Period > 4+1e-9 {
		t.Errorf("bound violated: %g", under.Metrics.Period)
	}
	// Different speeds must be rejected.
	plat2, err := pipesched.NewPlatform([]float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipesched.IdenticalSpeedMinPeriod(pipesched.NewEvaluator(app, plat2)); err == nil {
		t.Error("different speeds accepted")
	}
}

func TestDealFacade(t *testing.T) {
	app, err := pipesched.NewPipeline([]float64{30, 40, 600, 40, 30},
		[]float64{5, 20, 20, 20, 20, 5})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := pipesched.NewPlatform([]float64{10, 10, 10, 10, 10, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	opt, err := pipesched.ExactMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	// No plain interval mapping beats the heavy stage's own cycle; the
	// deal extension must.
	target := opt.Metrics.Period / 2
	if _, err := pipesched.BestUnderPeriod(ev, target); err == nil {
		t.Fatalf("plain heuristics reached %g — instance no longer exercises the floor", target)
	}
	res, err := pipesched.DealSplit(ev, target)
	if err != nil {
		t.Fatalf("DealSplit: %v", err)
	}
	if res.Metrics.Period > target*(1+1e-9) {
		t.Errorf("deal period %g > %g", res.Metrics.Period, target)
	}
	// Facade evaluation helpers agree with the result's own metrics.
	if got := pipesched.DealPeriod(ev, res.Mapping); math.Abs(got-res.Metrics.Period) > 1e-9 {
		t.Errorf("DealPeriod = %g, want %g", got, res.Metrics.Period)
	}
	if got := pipesched.DealLatency(ev, res.Mapping); math.Abs(got-res.Metrics.Latency) > 1e-9 {
		t.Errorf("DealLatency = %g, want %g", got, res.Metrics.Latency)
	}
	// Impossible even with dealing: every processor dealt still leaves
	// period ≥ cycle/p > 0.
	if _, err := pipesched.DealSplit(ev, 0.001); err == nil {
		t.Error("impossible deal bound accepted")
	} else if err.Error() == "" {
		t.Error("empty deal error message")
	}
}

func TestOneToOneBiCriteriaFacade(t *testing.T) {
	app, err := pipesched.NewPipeline([]float64{9, 1, 4}, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	plat, err := pipesched.NewPlatform([]float64{6, 3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipesched.NewEvaluator(app, plat)
	_, optMet, err := pipesched.OneToOneMinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	m, met, err := pipesched.OneToOneMinLatencyUnderPeriod(ev, optMet.Period*1.2)
	if err != nil {
		t.Fatal(err)
	}
	if met.Period > optMet.Period*1.2*(1+1e-9) {
		t.Errorf("period %g exceeds bound", met.Period)
	}
	// Each stage on a distinct processor.
	if m.Size() != 3 {
		t.Errorf("mapping %v is not one-to-one", m)
	}
	// Impossible bound errors out.
	if _, _, err := pipesched.OneToOneMinLatencyUnderPeriod(ev, optMet.Period*0.5); err == nil {
		t.Error("impossible bound accepted")
	}
}
