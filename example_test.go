package pipesched_test

import (
	"context"
	"fmt"

	"pipesched"
)

// The pipeline of the package documentation: four stages on a small
// heterogeneous cluster.
func ExampleNewPipeline() {
	app, err := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	if err != nil {
		panic(err)
	}
	fmt.Println(app.Stages(), "stages, total work", app.TotalWork())
	fmt.Println(app)
	// Output:
	// 4 stages, total work 510
	// [10] S1(120) [40] S2(80) [40] S3(250) [20] S4(60) [10]
}

func ExampleOptimalLatency() {
	app, _ := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10)
	ev := pipesched.NewEvaluator(app, plat)
	m, lat := pipesched.OptimalLatency(ev)
	fmt.Printf("%v latency=%.1f\n", m, lat)
	// Output:
	// S1..S4→P1 latency=27.5
}

func ExampleBestUnderPeriod() {
	app, _ := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10)
	ev := pipesched.NewEvaluator(app, plat)
	res, err := pipesched.BestUnderPeriod(ev, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v\nperiod=%.2f latency=%.2f\n", res.Mapping, res.Metrics.Period, res.Metrics.Latency)
	// Output:
	// S1..S2→P2 | S3→P1 | S4→P3
	// period=19.29 latency=42.29
}

func ExampleSimulate() {
	app, _ := pipesched.NewPipeline(
		[]float64{120, 80, 250, 60},
		[]float64{10, 40, 40, 20, 10})
	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10)
	ev := pipesched.NewEvaluator(app, plat)
	res, _ := pipesched.BestUnderPeriod(ev, 20)
	rep, err := pipesched.Simulate(ev, res.Mapping, pipesched.SimulationOptions{DataSets: 100})
	if err != nil {
		panic(err)
	}
	fmt.Printf("measured period %.2f, analytic %.2f\n", rep.SteadyStatePeriod, res.Metrics.Period)
	fmt.Printf("measured latency %.2f, analytic %.2f\n", rep.MaxLatency, res.Metrics.Latency)
	// Output:
	// measured period 19.29, analytic 19.29
	// measured latency 42.29, analytic 42.29
}

func ExampleExactParetoFront() {
	app, _ := pipesched.NewPipeline([]float64{4, 4}, []float64{0, 2, 0})
	plat, _ := pipesched.NewPlatform([]float64{2, 2}, 2)
	ev := pipesched.NewEvaluator(app, plat)
	front, err := pipesched.ExactParetoFront(ev)
	if err != nil {
		panic(err)
	}
	for _, pt := range front {
		fmt.Printf("period=%.0f latency=%.0f %v\n", pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
	}
	// Output:
	// period=3 latency=5 S1→P1 | S2→P2
	// period=4 latency=4 S1..S2→P1
}

// A batch of random instances solved concurrently: each instance races
// H1–H4 plus the exact DP under 1.5× its own period lower bound, the pool
// fans instances out over GOMAXPROCS workers, and the report aggregates
// the non-dominated (period, latency) frontier across the whole batch.
// Results are identical whatever the worker count.
func ExampleSolveBatch() {
	var batch []pipesched.WorkloadInstance
	for seed := int64(1); seed <= 16; seed++ {
		batch = append(batch, pipesched.GenerateWorkload(pipesched.WorkloadConfig{
			Family: pipesched.E2, Stages: 8, Processors: 6, Seed: seed,
		}))
	}
	report, err := pipesched.SolveBatch(context.Background(), batch, pipesched.BatchOptions{
		Objective:     pipesched.MinimizeLatency, // latency under a period bound
		Bound:         1.5,                       // × each instance's period lower bound
		RelativeBound: true,
		Exact:         true, // race the exact DP too (≤ 14 processors)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("solved %d/%d instances\n", report.Solved, len(batch))
	for _, pt := range report.Front {
		fmt.Printf("instance %2d: period=%.2f latency=%.2f\n",
			pt.Instance, pt.Metrics.Period, pt.Metrics.Latency)
	}
	// Output:
	// solved 14/16 instances
	// instance 12: period=7.95 latency=13.35
	// instance  1: period=8.69 latency=11.12
}

func ExampleDealSplit() {
	// A single dominant stage: no interval mapping beats its own
	// cycle-time, but a deal skeleton replicates it.
	app, _ := pipesched.NewPipeline([]float64{12}, []float64{0, 0})
	plat, _ := pipesched.NewPlatform([]float64{2, 2, 2}, 1)
	ev := pipesched.NewEvaluator(app, plat)
	res, err := pipesched.DealSplit(ev, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v period=%.0f latency=%.0f\n", res.Mapping, res.Metrics.Period, res.Metrics.Latency)
	// Output:
	// S1→deal{P1,P2,P3} period=2 latency=6
}
