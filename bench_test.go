// Benchmarks regenerating (at reduced trial counts — full paper scale runs
// via cmd/experiments) every table and figure of the paper's evaluation,
// plus micro-benchmarks of the individual algorithms and ablations of the
// design choices called out in DESIGN.md.
package pipesched_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pipesched"
	"pipesched/internal/chains"
	"pipesched/internal/deal"
	"pipesched/internal/exact"
	"pipesched/internal/experiments"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/onetoone"
	"pipesched/internal/portfolio"
	"pipesched/internal/sim"
	"pipesched/internal/workload"
)

// benchFigure runs one paper figure's sweep at bench scale. Shapes match
// the paper runs exactly; only Trials and Points are reduced so a full
// -bench=. pass stays tractable.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.FigureSpec(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	spec.Trials = 6
	spec.Points = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := experiments.TradeoffCurve(spec)
		if len(curve.Series) != 6 {
			b.Fatalf("%s: %d series", id, len(curve.Series))
		}
	}
}

// --- Figures 2–7: one benchmark per sub-figure -------------------------

func BenchmarkFig2a(b *testing.B) { benchFigure(b, "2a") } // E1, n=10, p=10
func BenchmarkFig2b(b *testing.B) { benchFigure(b, "2b") } // E1, n=40, p=10
func BenchmarkFig3a(b *testing.B) { benchFigure(b, "3a") } // E2, n=10, p=10
func BenchmarkFig3b(b *testing.B) { benchFigure(b, "3b") } // E2, n=40, p=10
func BenchmarkFig4a(b *testing.B) { benchFigure(b, "4a") } // E3, n=5, p=10
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "4b") } // E3, n=20, p=10
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "5a") } // E4, n=5, p=10
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "5b") } // E4, n=20, p=10
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a") } // E1, n=40, p=100
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b") } // E2, n=40, p=100
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "7a") } // E3, n=10, p=100
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "7b") } // E4, n=40, p=100

// --- Table 1: failure thresholds, one benchmark per family -------------

func benchTable(b *testing.B, fam workload.Family) {
	b.Helper()
	spec := experiments.ThresholdSpec{
		Family: fam, Stages: []int{5, 10, 20, 40}, Processors: 10,
		Trials: 6, BaseSeed: 100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := experiments.FailureThresholds(spec)
		if len(tbl.HIDs) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable1E1(b *testing.B) { benchTable(b, workload.E1) }
func BenchmarkTable1E2(b *testing.B) { benchTable(b, workload.E2) }
func BenchmarkTable1E3(b *testing.B) { benchTable(b, workload.E3) }
func BenchmarkTable1E4(b *testing.B) { benchTable(b, workload.E4) }

// --- Micro-benchmarks: heuristics on a fixed mid-sized instance --------

func benchEvaluator(n, p int, seed int64) *pipesched.Evaluator {
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: n, Processors: p, Seed: seed})
	return in.Evaluator()
}

func benchHeuristicPeriod(b *testing.B, h pipesched.PeriodConstrained, n, p int) {
	ev := benchEvaluator(n, p, 42)
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	bound := ev.Period(single) * 0.4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.MinimizeLatency(ev, bound); err != nil {
			bound *= 1.2 // back off until feasible, then stay there
		}
	}
}

func BenchmarkH1SpMonoP(b *testing.B) { benchHeuristicPeriod(b, heuristics.SpMonoP{}, 40, 10) }
func BenchmarkH2ThreeExploMono(b *testing.B) {
	benchHeuristicPeriod(b, heuristics.ThreeExploMono{}, 40, 10)
}
func BenchmarkH3ThreeExploBi(b *testing.B) {
	benchHeuristicPeriod(b, heuristics.ThreeExploBi{}, 40, 10)
}
func BenchmarkH4SpBiP(b *testing.B) { benchHeuristicPeriod(b, heuristics.SpBiP{}, 40, 10) }

func benchHeuristicLatency(b *testing.B, h pipesched.LatencyConstrained, n, p int) {
	ev := benchEvaluator(n, p, 42)
	_, optLat := ev.OptimalLatency()
	bound := optLat * 1.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.MinimizePeriod(ev, bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkH5SpMonoL(b *testing.B) { benchHeuristicLatency(b, heuristics.SpMonoL{}, 40, 10) }
func BenchmarkH6SpBiL(b *testing.B)   { benchHeuristicLatency(b, heuristics.SpBiL{}, 40, 10) }

// Scaling ablation: the plain splitter across platform sizes (the paper's
// p = 10 → 100 transition).
func BenchmarkH1Scaling(b *testing.B) {
	for _, p := range []int{10, 100} {
		for _, n := range []int{10, 40} {
			b.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(b *testing.B) {
				benchHeuristicPeriod(b, heuristics.SpMonoP{}, n, p)
			})
		}
	}
}

// --- Exact solvers and ablations ---------------------------------------

func BenchmarkExactMinPeriod(b *testing.B) {
	ev := benchEvaluator(10, 8, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.MinPeriod(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactParetoFront(b *testing.B) {
	ev := benchEvaluator(8, 6, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.ParetoFront(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// fewClassEvaluator builds a platform beyond the legacy 14-processor
// ceiling whose speeds cycle through few distinct values — the structure
// the class-compressed DP is built for.
func fewClassEvaluator(n, p, classes int, seed int64) *pipesched.Evaluator {
	r := rand.New(rand.NewSource(seed))
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + i%classes)
	}
	app, err := pipesched.NewPipeline(works, deltas)
	if err != nil {
		panic(err)
	}
	plat, err := pipesched.NewPlatform(speeds, 10)
	if err != nil {
		panic(err)
	}
	return pipesched.NewEvaluator(app, plat)
}

// BenchmarkExactLargeFewClass times exact solves that the old bitmask DP
// rejected outright: 24 processors in 3 speed classes of 8 (9³ = 729
// compressed states versus an impossible 2^24).
func BenchmarkExactLargeFewClass(b *testing.B) {
	ev := fewClassEvaluator(10, 24, 3, 7)
	b.Run("MinPeriod", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.MinPeriod(ev); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinPeriodUnderLatency", func(b *testing.B) {
		_, optLat := ev.OptimalLatency()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.MinPeriodUnderLatency(ev, optLat*1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExactMinPeriodParallel times the wave-parallel DP against the
// serial runner on an instance above the engagement threshold: 32
// processors in 4 speed classes of 8 (9⁴ = 6561 compressed states,
// versus the shipped ParallelStateThreshold of 4096). The serial row
// pins the threshold out of reach so the allocation-free path runs; the
// parallel row ships the default policy, so the wave runner engages
// with one worker stratum per schedulable CPU. On a single-CPU host the
// engagement gate folds the parallel row back onto the serial path and
// the two rows coincide — the gate's guarantee that parallelism never
// loses — so read the delta on a multi-core runner for the real gain.
func BenchmarkExactMinPeriodParallel(b *testing.B) {
	ev := fewClassEvaluator(10, 32, 4, 7)
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.MinPeriod(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		old := exact.ParallelStateThreshold
		exact.ParallelStateThreshold = 1 << 30
		defer func() { exact.ParallelStateThreshold = old }()
		run(b)
	})
	b.Run("parallel", run)
}

// Chains-to-chains ablation (DESIGN.md §6): exact DP vs bisection vs the
// recursive-bisection heuristic on the same homogeneous instance, and
// greedy vs exact on the heterogeneous one.
func chainArray(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(1 + r.Intn(20))
	}
	return a
}

func BenchmarkChainsHomogeneousDP(b *testing.B) {
	a := chainArray(200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.HomogeneousDP(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainsHomogeneousBisect(b *testing.B) {
	a := chainArray(200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.HomogeneousBisect(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainsRecursiveBisection(b *testing.B) {
	a := chainArray(200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.RecursiveBisection(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainsHeterogeneousExact(b *testing.B) {
	a := chainArray(24, 2)
	speeds := chainArray(10, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.HeterogeneousExact(a, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainsHeterogeneousGreedy(b *testing.B) {
	a := chainArray(24, 2)
	speeds := chainArray(10, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.HeterogeneousGreedy(a, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Portfolio and batch engine -----------------------------------------

// BenchmarkSolveBatch contrasts the serial reference path with the
// concurrent pool on the same 64-instance batch; on multi-core the
// parallel variant should scale with GOMAXPROCS while producing the
// identical report.
func BenchmarkSolveBatch(b *testing.B) {
	instances := workload.GenerateSet(workload.E2, 20, 10, 64, 31000)
	base := pipesched.BatchOptions{Bound: 1.5, RelativeBound: true}
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := base
			opts.Serial = mode.serial
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := pipesched.SolveBatch(context.Background(), instances, opts)
				if err != nil {
					b.Fatal(err)
				}
				if report.Solved == 0 {
					b.Fatal("nothing solved")
				}
			}
		})
	}
}

// BenchmarkBatchGrouped contrasts the per-instance batch lane with the
// platform-grouped SoA lane on the skewed shape real batches have: 64
// pipelines against one shared platform object, as the service layer's
// decode-time platform dedup produces. The grouped lane builds the
// platform-derived evaluator tables once and shares their backing
// arrays across the batch; the report is bit-identical either way.
func BenchmarkBatchGrouped(b *testing.B) {
	instances := workload.GenerateSet(workload.E2, 20, 10, 64, 31000)
	for i := range instances {
		instances[i].Plat = instances[0].Plat
	}
	opts := pipesched.BatchOptions{Bound: 1.5, RelativeBound: true}
	for _, mode := range []struct {
		name string
		run  func(context.Context, []pipesched.WorkloadInstance, pipesched.BatchOptions) (pipesched.BatchReport, error)
	}{
		{"ungrouped", pipesched.SolveBatch},
		{"grouped", portfolio.SolveBatchGrouped},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := mode.run(context.Background(), instances, opts)
				if err != nil {
					b.Fatal(err)
				}
				if report.Solved == 0 {
					b.Fatal("nothing solved")
				}
			}
		})
	}
}

// BenchmarkPortfolioRace times one instance's portfolio (heuristics +
// exact DP) serial versus racing.
func BenchmarkPortfolioRace(b *testing.B) {
	ev := benchEvaluator(14, 10, 47)
	bound := pipesched.PeriodLowerBound(ev) * 1.5
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, found, _ := portfolio.UnderPeriod(context.Background(), ev, bound,
					portfolio.SolveOptions{Exact: true, Serial: mode.serial})
				if !found {
					b.Fatal("infeasible bound")
				}
			}
		})
	}
}

// BenchmarkHeuristicSolve is the snapshot benchmark of one heuristic
// solve per H1–H6 on the shared mid-sized instance — the per-solver
// trajectory scripts/bench.sh records into BENCH_*.json.
func BenchmarkHeuristicSolve(b *testing.B) {
	for _, h := range pipesched.PeriodHeuristics() {
		b.Run(h.ID(), func(b *testing.B) { benchHeuristicPeriod(b, h, 40, 10) })
	}
	for _, h := range pipesched.LatencyHeuristics() {
		b.Run(h.ID(), func(b *testing.B) { benchHeuristicLatency(b, h, 40, 10) })
	}
}

// BenchmarkParetoSweep is the snapshot benchmark of the sweep core
// (internal/portfolio.ParetoSweep), serial versus pooled workers.
func BenchmarkParetoSweep(b *testing.B) {
	ev := benchEvaluator(30, 40, 53)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if front := portfolio.ParetoSweep(context.Background(), ev, 10, mode.workers); len(front) == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
	}
}

// BenchmarkHeuristicParetoSweep exercises the parallelised façade sweep on
// a paper-scale platform.
func BenchmarkHeuristicParetoSweep(b *testing.B) {
	ev := benchEvaluator(40, 100, 53)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if front := pipesched.HeuristicParetoSweep(ev, 10); len(front) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// --- Simulator and baselines --------------------------------------------

func BenchmarkSimulator(b *testing.B) {
	ev := benchEvaluator(20, 10, 9)
	res, err := pipesched.BestUnderPeriod(ev, pipesched.PeriodLowerBound(ev)*2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ev, res.Mapping, sim.Options{DataSets: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneToOneMinPeriod(b *testing.B) {
	ev := benchEvaluator(10, 20, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onetoone.MinPeriod(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitFullyHet(b *testing.B) {
	ev := benchEvaluator(20, 10, 13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.MinAchievablePeriodFullyHet(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFullHetEvaluator derives a fully heterogeneous instance from the
// shared generator: same pipeline and speeds, deterministic per-link
// bandwidths in [1, 5).
func benchFullHetEvaluator(n, p int, seed int64) *pipesched.Evaluator {
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: n, Processors: p, Seed: seed})
	r := rand.New(rand.NewSource(seed + 1))
	links := make([][]float64, p)
	for u := range links {
		links[u] = make([]float64, p)
	}
	for u := 0; u < p; u++ {
		for v := u + 1; v < p; v++ {
			bw := 1 + 4*r.Float64()
			links[u][v], links[v][u] = bw, bw
		}
	}
	plat, err := pipesched.NewFullyHeterogeneousPlatform(in.Plat.Speeds(), links)
	if err != nil {
		panic(err)
	}
	return pipesched.NewEvaluator(in.App, plat)
}

// BenchmarkFullHetPortfolioRace times the fully heterogeneous portfolio
// lane — F1 under a period bound, F5/F6 under a latency bound — serial
// versus racing, the fullhet counterpart of BenchmarkPortfolioRace.
func BenchmarkFullHetPortfolioRace(b *testing.B) {
	ev := benchFullHetEvaluator(14, 10, 47)
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	minPeriod, err := heuristics.MinAchievablePeriodFullyHet(ev)
	if err != nil {
		b.Fatal(err)
	}
	periodBound := minPeriod * 1.05
	latencyBound := ev.Latency(single) * 1.5
	for _, mode := range []struct {
		name   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	} {
		b.Run("period/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, found, _ := portfolio.UnderPeriod(context.Background(), ev, periodBound,
					portfolio.SolveOptions{Exact: true, Serial: mode.serial})
				if !found {
					b.Fatal("infeasible bound")
				}
			}
		})
		b.Run("latency/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, found, _ := portfolio.UnderLatency(context.Background(), ev, latencyBound,
					portfolio.SolveOptions{Exact: true, Serial: mode.serial})
				if !found {
					b.Fatal("infeasible bound")
				}
			}
		})
	}
}

func BenchmarkEvaluatorPeriod(b *testing.B) {
	ev := benchEvaluator(40, 10, 17)
	res, err := pipesched.BestUnderPeriod(ev, pipesched.PeriodLowerBound(ev)*2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.Period(res.Mapping)
	}
}

func BenchmarkChainsHomogeneousNicol(b *testing.B) {
	a := chainArray(200, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chains.HomogeneousNicol(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the latency-constrained 3-Exploration extensions (X7/X8)
// against the paper's H5/H6 on the same instance.
func BenchmarkExploLatencyAblation(b *testing.B) {
	hs := append(heuristics.LatencyHeuristics(), heuristics.ExtensionLatencyHeuristics()...)
	for _, h := range hs {
		b.Run(h.ID(), func(b *testing.B) {
			benchHeuristicLatency(b, h, 40, 10)
		})
	}
}

func BenchmarkOneToOneHungarian(b *testing.B) {
	ev := benchEvaluator(12, 24, 19)
	_, met, err := onetoone.MinPeriod(ev)
	if err != nil {
		b.Fatal(err)
	}
	bound := met.Period * 1.3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onetoone.MinLatencyUnderPeriod(ev, bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDealSplit(b *testing.B) {
	ev := benchEvaluator(20, 10, 23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Chase an unreachable period: exercises the full move loop.
		if _, err := deal.DealSplit(ev, 0); err == nil {
			b.Fatal("period 0 reached")
		}
	}
}

func BenchmarkDealSimulate(b *testing.B) {
	ev := benchEvaluator(10, 10, 29)
	res, err := deal.DealSplit(ev, pipesched.PeriodLowerBound(ev))
	var m *deal.Mapping
	if err == nil {
		m = res.Mapping
	} else if e, ok := err.(*deal.InfeasibleError); ok {
		m = e.Best.Mapping
	} else {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deal.Simulate(ev, m, 500); err != nil {
			b.Fatal(err)
		}
	}
}
