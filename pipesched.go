package pipesched

import (
	"context"
	"fmt"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/sim"
	"pipesched/internal/workload"
)

// Core model types, re-exported from the internal packages. The aliases
// are transparent: values flow freely between the façade and any internal
// API an advanced user vendors in.
type (
	// Pipeline is an n-stage pipeline application (stage works w_k and
	// communication sizes δ_k).
	Pipeline = pipeline.Pipeline
	// Platform is a set of processors with speeds and link bandwidths.
	Platform = platform.Platform
	// Mapping assigns intervals of consecutive stages to distinct
	// processors.
	Mapping = mapping.Mapping
	// Interval is one element of a Mapping: stages [Start..End] on Proc.
	Interval = mapping.Interval
	// Metrics bundles the two antagonist criteria (period, latency).
	Metrics = mapping.Metrics
	// Evaluator computes periods and latencies for one
	// (pipeline, platform) pair.
	Evaluator = mapping.Evaluator
	// Result is a heuristic outcome: a mapping plus its metrics.
	Result = heuristics.Result
	// InfeasibleError reports a constraint a heuristic could not meet;
	// it carries the best mapping reached anyway.
	InfeasibleError = heuristics.InfeasibleError
	// PeriodConstrained minimises latency under a period bound (the
	// paper's H1–H4).
	PeriodConstrained = heuristics.PeriodConstrained
	// LatencyConstrained minimises period under a latency bound (H5–H6).
	LatencyConstrained = heuristics.LatencyConstrained
	// SimulationReport is the outcome of a discrete-event simulation.
	SimulationReport = sim.Report
	// SimulationOptions configures a simulation run.
	SimulationOptions = sim.Options
	// ExactResult is an optimal mapping with its metrics.
	ExactResult = exact.Result
	// ParetoPoint is one point of an exact (period, latency) front.
	ParetoPoint = exact.ParetoPoint
	// WorkloadFamily selects one of the paper's experiment families
	// E1–E4.
	WorkloadFamily = workload.Family
	// WorkloadConfig describes one random instance to generate.
	WorkloadConfig = workload.Config
	// WorkloadInstance is a generated application/platform pair.
	WorkloadInstance = workload.Instance
)

// The four experiment families of the paper's evaluation (Section 5.1).
const (
	E1 = workload.E1 // balanced comm/comp, homogeneous communications
	E2 = workload.E2 // balanced comm/comp, heterogeneous communications
	E3 = workload.E3 // large computations
	E4 = workload.E4 // small computations
)

// NewPipeline builds a pipeline from stage works (length n) and
// communication sizes (length n+1: δ_0..δ_n).
func NewPipeline(works, deltas []float64) (*Pipeline, error) {
	return pipeline.New(works, deltas)
}

// NewPlatform builds a Communication Homogeneous platform from processor
// speeds and the common link bandwidth b.
func NewPlatform(speeds []float64, bandwidth float64) (*Platform, error) {
	return platform.New(speeds, bandwidth)
}

// NewFullyHeterogeneousPlatform builds a platform with per-link
// bandwidths (the paper's future-work extension; links[u][v] = b_{u+1,v+1}).
func NewFullyHeterogeneousPlatform(speeds []float64, links [][]float64) (*Platform, error) {
	return platform.NewFullyHeterogeneous(speeds, links)
}

// NewEvaluator binds a pipeline and platform into the cost model of
// equations (1) and (2).
func NewEvaluator(app *Pipeline, plat *Platform) *Evaluator {
	return mapping.NewEvaluator(app, plat)
}

// NewMapping validates an explicit interval mapping.
func NewMapping(app *Pipeline, plat *Platform, ivs []Interval) (*Mapping, error) {
	return mapping.New(app, plat, ivs)
}

// SingleProcessorMapping maps the whole pipeline onto processor u; with
// u = plat.Fastest() this is the latency-optimal mapping (Lemma 1).
func SingleProcessorMapping(app *Pipeline, plat *Platform, u int) *Mapping {
	return mapping.SingleProcessor(app, plat, u)
}

// PeriodHeuristics returns the paper's four period-constrained heuristics
// in order: H1 "Sp mono, P fix", H2 "3-Explo mono", H3 "3-Explo bi",
// H4 "Sp bi, P fix".
func PeriodHeuristics() []PeriodConstrained { return heuristics.PeriodHeuristics() }

// LatencyHeuristics returns the paper's two latency-constrained
// heuristics: H5 "Sp mono, L fix" and H6 "Sp bi, L fix".
func LatencyHeuristics() []LatencyConstrained { return heuristics.LatencyHeuristics() }

// BestUnderPeriod runs all four period-constrained heuristics — racing
// them on separate goroutines — and returns the feasible result with the
// smallest latency (ties: smallest period). The selection is deterministic
// and identical to running the heuristics sequentially. It returns an
// error only when every heuristic fails, wrapping the failure that came
// closest to the bound.
func BestUnderPeriod(ev *Evaluator, maxPeriod float64) (Result, error) {
	out, found, closest := portfolio.UnderPeriod(context.Background(), ev, maxPeriod, portfolio.SolveOptions{})
	if !found {
		return Result{}, fmt.Errorf("pipesched: no heuristic reached period ≤ %g: %w", maxPeriod, closest)
	}
	return out.Result, nil
}

// BestUnderLatency runs both latency-constrained heuristics — racing them
// on separate goroutines — and returns the feasible result with the
// smallest period. The selection is deterministic and identical to running
// the heuristics sequentially.
func BestUnderLatency(ev *Evaluator, maxLatency float64) (Result, error) {
	out, found, closest := portfolio.UnderLatency(context.Background(), ev, maxLatency, portfolio.SolveOptions{})
	if !found {
		return Result{}, fmt.Errorf("pipesched: latency bound %g below the optimum: %w", maxLatency, closest)
	}
	return out.Result, nil
}

// OptimalLatency returns the latency-optimal mapping and its latency
// (everything on the fastest processor — Lemma 1 of the paper).
func OptimalLatency(ev *Evaluator) (*Mapping, float64) { return ev.OptimalLatency() }

// PeriodLowerBound returns a cheap valid lower bound on the period of any
// interval mapping; useful for anchoring sweeps and sanity checks.
func PeriodLowerBound(ev *Evaluator) float64 { return lowerbound.Period(ev) }

// ExactMinPeriod computes the optimal-period mapping with the
// speed-class-compressed dynamic program. Platforms are accepted whenever
// their compressed state space ∏(c_k+1) over the speed-class sizes c_k
// stays within the solver budget (see ExactEligible) — the raw processor
// count does not matter, so few-class platforms far beyond the historical
// 14-processor ceiling solve exactly.
func ExactMinPeriod(ev *Evaluator) (ExactResult, error) { return exact.MinPeriod(ev) }

// ExactMinLatencyUnderPeriod computes the optimal latency achievable under
// a period bound (exponential in the speed-class structure; see
// ExactEligible).
func ExactMinLatencyUnderPeriod(ev *Evaluator, maxPeriod float64) (ExactResult, error) {
	return exact.MinLatencyUnderPeriod(ev, maxPeriod)
}

// ExactMinPeriodUnderLatency computes the optimal period achievable under
// a latency bound (exponential in the speed-class structure; see
// ExactEligible).
func ExactMinPeriodUnderLatency(ev *Evaluator, maxLatency float64) (ExactResult, error) {
	return exact.MinPeriodUnderLatency(ev, maxLatency)
}

// ExactParetoFront enumerates the exact (period, latency) Pareto front
// (exponential in the speed-class structure; see ExactEligible).
func ExactParetoFront(ev *Evaluator) ([]ParetoPoint, error) { return exact.ParetoFront(ev) }

// ExactEligible reports whether the exact solvers accept the platform:
// Communication Homogeneous with a compressed state space ∏(c_k+1) of at
// most 2^16 over its speed-class sizes. Every platform of up to 16
// processors qualifies regardless of speeds; larger platforms qualify
// when their distinct-speed structure is small (e.g. 100 homogeneous
// processors are 101 states). This is also the gate the portfolio and
// batch engines key their exact-DP participation on.
func ExactEligible(plat *Platform) bool { return exact.Eligible(plat) }

// Simulate pushes opts.DataSets data sets through m under the one-port
// discrete-event model and reports measured period, latencies and
// utilizations.
func Simulate(ev *Evaluator, m *Mapping, opts SimulationOptions) (SimulationReport, error) {
	return sim.Run(ev, m, opts)
}

// ValidateModel simulates m long enough to reach steady state and checks
// the measured period and latency against equations (1) and (2) within
// the relative tolerance tol.
func ValidateModel(ev *Evaluator, m *Mapping, tol float64) error {
	return sim.ValidateModel(ev, m, tol)
}

// GenerateWorkload draws one random application/platform pair from one of
// the paper's experiment families.
func GenerateWorkload(cfg WorkloadConfig) WorkloadInstance { return workload.Generate(cfg) }

// SplitFullyHet runs the splitting heuristic extended to fully
// heterogeneous platforms (free processor choice, link-aware evaluation).
func SplitFullyHet(ev *Evaluator, maxPeriod float64) (Result, error) {
	return heuristics.SplitFullyHet(ev, maxPeriod)
}
